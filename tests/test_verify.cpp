// Tests for the parallel state-space verification kernel (DESIGN.md S22)
// and the layers rewired onto it.
//
// The heart is a differential suite against a *pre-refactor oracle*: a
// straight reimplementation of the classic sequential explorer (hash-map
// interner, expand-in-discovery-order, Tarjan + bottom-SCC sweep) that the
// three per-layer explorers used before the kernel existed. The kernel's
// wave discipline must reproduce it byte-for-byte — same node ids, same
// SCC counts, same counterexample configuration — at every thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <vector>

#include "analysis/reachability.hpp"
#include "baselines/majority.hpp"
#include "compile/lower.hpp"
#include "compile/to_protocol.hpp"
#include "engine/pool.hpp"
#include "machine/interp.hpp"
#include "pp/verifier.hpp"
#include "progmodel/explore.hpp"
#include "progmodel/flat.hpp"
#include "progmodel/sample_programs.hpp"
#include "verify/interner.hpp"
#include "verify/kernel.hpp"

namespace ppde {
namespace {

using u32 = std::uint32_t;
using u64 = std::uint64_t;

// ---------------------------------------------------------------------------
// WorkerPool

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    engine::WorkerPool pool(threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(hits.size(),
                      [&](u64 i) { hits[i].fetch_add(1); });
    for (const std::atomic<int>& hit : hits) EXPECT_EQ(hit.load(), 1);
  }
}

TEST(WorkerPool, ReusableAcrossCalls) {
  engine::WorkerPool pool(4);
  std::atomic<u64> sum{0};
  for (int round = 0; round < 50; ++round)
    pool.parallel_for(10, [&](u64 i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 50u * 45u);
}

TEST(WorkerPool, EmptyRangeIsANoOp) {
  engine::WorkerPool pool(4);
  pool.parallel_for(0, [&](u64) { FAIL() << "body must not run"; });
}

TEST(WorkerPool, RethrowsTheFirstException) {
  engine::WorkerPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](u64 i) {
                                   if (i % 10 == 3)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool must survive a throwing batch.
  std::atomic<int> ran{0};
  pool.parallel_for(8, [&](u64) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
}

// ---------------------------------------------------------------------------
// Interner

TEST(Interner, InternFindRoundTrip) {
  verify::Interner interner;
  const std::vector<u64> a = {1, 2, 3};
  const std::vector<u64> b = {1, 2, 4};
  const u64 ha = verify::hash_words(a);
  const u64 hb = verify::hash_words(b);
  EXPECT_EQ(interner.find(a, ha), verify::Interner::kNotFound);
  EXPECT_EQ(interner.intern(a, ha), (std::pair<u32, bool>{0, true}));
  EXPECT_EQ(interner.intern(b, hb), (std::pair<u32, bool>{1, true}));
  EXPECT_EQ(interner.intern(a, ha), (std::pair<u32, bool>{0, false}));
  EXPECT_EQ(interner.find(a, ha), 0u);
  EXPECT_EQ(interner.find(b, hb), 1u);
  EXPECT_EQ(interner.size(), 2u);
  const std::span<const u64> stored = interner.state(1);
  EXPECT_EQ(std::vector<u64>(stored.begin(), stored.end()), b);
}

TEST(Interner, SurvivesGrowthWithManyKeys) {
  verify::Interner interner;
  constexpr u32 kKeys = 50'000;
  for (u32 i = 0; i < kKeys; ++i) {
    const std::vector<u64> key = {i, i * 31 + 7, i % 5};
    EXPECT_EQ(interner.intern(key, verify::hash_words(key)).first, i);
  }
  EXPECT_EQ(interner.size(), kKeys);
  for (u32 i = 0; i < kKeys; i += 997) {
    const std::vector<u64> key = {i, i * 31 + 7, i % 5};
    EXPECT_EQ(interner.find(key, verify::hash_words(key)), i);
  }
  EXPECT_GT(interner.bytes(), kKeys * 3 * sizeof(u64));
}

TEST(Interner, DistinguishesLengths) {
  verify::Interner interner;
  const std::vector<u64> shorter = {5};
  const std::vector<u64> longer = {5, 0};
  interner.intern(shorter, verify::hash_words(shorter));
  EXPECT_EQ(interner.find(longer, verify::hash_words(longer)),
            verify::Interner::kNotFound);
}

// ---------------------------------------------------------------------------
// Kernel on a toy domain

/// Deterministic toy graph on {0..modulus-1}: x -> x+1 and x -> 2x. Nodes
/// divisible by `terminal_every` are terminal events.
struct ToyDomain {
  u64 modulus;
  u64 terminal_every = 0;

  void expand(std::span<const u64> state, verify::Emitter& emit) const {
    const u64 x = state[0];
    if (terminal_every != 0 && x % terminal_every == 0 && x != 0) {
      emit.set_terminal(0);
      return;
    }
    const std::vector<u64> inc = {(x + 1) % modulus};
    const std::vector<u64> dbl = {(2 * x) % modulus};
    emit.emit(inc);
    emit.emit(dbl);
  }
};

TEST(Kernel, ExploresTheFullToyGraphIdenticallyAtEveryThreadCount) {
  std::vector<std::vector<std::vector<u32>>> all_successors;
  for (const unsigned threads : {1u, 3u, 8u}) {
    const ToyDomain domain{1000, 7};
    verify::KernelOptions options;
    options.threads = threads;
    options.wave_chunk = 16;  // force many waves
    verify::Kernel<ToyDomain> kernel(domain, options);
    const std::vector<std::vector<u64>> roots = {{1}};
    const verify::KernelStats& stats = kernel.run(roots);
    EXPECT_TRUE(stats.complete);
    EXPECT_EQ(stats.limit, verify::LimitKind::kNone);
    EXPECT_EQ(stats.nodes, kernel.num_nodes());
    all_successors.push_back(kernel.successors());
  }
  EXPECT_EQ(all_successors[0], all_successors[1]);
  EXPECT_EQ(all_successors[0], all_successors[2]);
}

TEST(Kernel, NodeBudgetReportsPartialStats) {
  const ToyDomain domain{100'000};
  verify::KernelOptions options;
  options.max_nodes = 500;
  verify::Kernel<ToyDomain> kernel(domain, options);
  const std::vector<std::vector<u64>> roots = {{1}};
  const verify::KernelStats& stats = kernel.run(roots);
  EXPECT_FALSE(stats.complete);
  EXPECT_EQ(stats.limit, verify::LimitKind::kNodes);
  EXPECT_GT(stats.nodes, 500u);
  EXPECT_GT(stats.edges, 0u);
}

TEST(Kernel, EdgeBudgetReportsPartialStats) {
  const ToyDomain domain{100'000};
  verify::KernelOptions options;
  options.max_edges = 100;
  verify::Kernel<ToyDomain> kernel(domain, options);
  const std::vector<std::vector<u64>> roots = {{1}};
  const verify::KernelStats& stats = kernel.run(roots);
  EXPECT_FALSE(stats.complete);
  EXPECT_EQ(stats.limit, verify::LimitKind::kEdges);
  EXPECT_GT(stats.edges, 100u);
}

TEST(Kernel, ByteBudgetReportsPartialStats) {
  const ToyDomain domain{100'000};
  verify::KernelOptions options;
  options.max_bytes = 4096;
  verify::Kernel<ToyDomain> kernel(domain, options);
  const std::vector<std::vector<u64>> roots = {{1}};
  const verify::KernelStats& stats = kernel.run(roots);
  EXPECT_FALSE(stats.complete);
  EXPECT_EQ(stats.limit, verify::LimitKind::kBytes);
}

TEST(Kernel, BudgetTripPointIsThreadCountIndependent) {
  std::vector<u64> node_counts;
  for (const unsigned threads : {1u, 4u}) {
    const ToyDomain domain{100'000};
    verify::KernelOptions options;
    options.max_nodes = 700;
    options.threads = threads;
    options.wave_chunk = 32;
    verify::Kernel<ToyDomain> kernel(domain, options);
    const std::vector<std::vector<u64>> roots = {{1}};
    node_counts.push_back(kernel.run(roots).nodes);
  }
  EXPECT_EQ(node_counts[0], node_counts[1]);
}

TEST(Kernel, TerminalNodesAreExcludedFromBottomSccs) {
  // 0 -> 0 self-loop... actually build: terminal node's SCC never bottom.
  const ToyDomain domain{12, 5};
  verify::Kernel<ToyDomain> kernel(domain, {});
  const std::vector<std::vector<u64>> roots = {{1}};
  kernel.run(roots);
  const verify::SccAnalysis analysis = kernel.analyse();
  for (u32 id = 0; id < kernel.num_nodes(); ++id)
    if (kernel.terminal_tag(id) != verify::kNoTerminal)
      EXPECT_FALSE(analysis.is_bottom[analysis.scc.scc_of[id]]);
}

// ---------------------------------------------------------------------------
// pp::Verifier vs the pre-refactor sequential oracle

/// The classic sequential explorer the kernel replaced: map-based
/// interning in discovery order, immediate successor interning, Tarjan +
/// aggregate bottom-SCC sweep. Kept here as the reference semantics.
struct OracleResult {
  pp::VerificationResult::Verdict verdict;
  u64 nodes = 0;
  u64 edges = 0;
  u64 num_sccs = 0;
  u64 num_bottom_sccs = 0;
  std::optional<pp::Config> counterexample;
};

OracleResult oracle_verify(const pp::Protocol& protocol,
                           const pp::Config& initial, bool witness_mode,
                           u64 max_configs) {
  std::map<std::vector<u32>, u32> ids;
  std::vector<std::vector<u32>> nodes;
  std::vector<std::vector<u32>> successors;
  std::vector<u32> id_order_key;  // discovery order of map keys

  const auto dense = [&](const pp::Config& config) {
    std::vector<u32> counts(config.num_states());
    for (pp::State q = 0; q < config.num_states(); ++q)
      counts[q] = config[q];
    return counts;
  };
  const auto intern = [&](const std::vector<u32>& counts) {
    const auto [it, inserted] =
        ids.try_emplace(counts, static_cast<u32>(nodes.size()));
    if (inserted) {
      nodes.push_back(counts);
      successors.emplace_back();
    }
    return it->second;
  };

  OracleResult result;
  result.verdict = pp::VerificationResult::Verdict::kResourceLimit;
  intern(dense(initial));
  for (u32 id = 0; id < nodes.size(); ++id) {
    if (nodes.size() > max_configs) {
      result.nodes = nodes.size();
      return result;  // partial: limit
    }
    const std::vector<u32> node = nodes[id];
    std::vector<u32> succs;
    for (pp::State q = 0; q < node.size(); ++q) {
      if (node[q] == 0) continue;
      for (pp::State r = 0; r < node.size(); ++r) {
        if (node[r] == 0) continue;
        if (q == r && node[q] < 2) continue;
        for (const u32 index : protocol.transitions_for(q, r)) {
          const pp::Transition& t = protocol.transitions()[index];
          std::vector<u32> next = node;
          --next[t.q];
          --next[t.r];
          ++next[t.q2];
          ++next[t.r2];
          succs.push_back(intern(next));
        }
      }
    }
    std::sort(succs.begin(), succs.end());
    succs.erase(std::unique(succs.begin(), succs.end()), succs.end());
    result.edges += succs.size();
    successors[id] = std::move(succs);
  }
  result.nodes = nodes.size();

  const support::SccResult scc = support::tarjan_scc(successors);
  const std::vector<std::uint8_t> is_bottom = scc.bottom(successors);
  result.num_sccs = scc.scc_count;
  bool aggregate_true = false, aggregate_false = false;
  std::optional<u32> offending;
  std::vector<std::uint8_t> seen(scc.scc_count, 0);
  for (u32 id = 0; id < nodes.size(); ++id) {
    if (!is_bottom[scc.scc_of[id]]) continue;
    if (!seen[scc.scc_of[id]]) {
      seen[scc.scc_of[id]] = 1;
      ++result.num_bottom_sccs;
    }
    bool any_accepting = false, any_rejecting = false;
    for (pp::State q = 0; q < nodes[id].size(); ++q)
      if (nodes[id][q] != 0)
        (protocol.is_accepting(q) ? any_accepting : any_rejecting) = true;
    const bool mixed = !witness_mode && any_accepting && any_rejecting;
    if (mixed || any_accepting) aggregate_true = true;
    if (mixed || !any_accepting) aggregate_false = true;
    if (aggregate_true && aggregate_false && !offending) offending = id;
  }
  using Verdict = pp::VerificationResult::Verdict;
  if (aggregate_true && aggregate_false) {
    result.verdict = Verdict::kDoesNotStabilise;
    pp::Config counterexample(protocol.num_states());
    for (pp::State q = 0; q < protocol.num_states(); ++q)
      counterexample.add(q, nodes[*offending][q]);
    result.counterexample = std::move(counterexample);
  } else if (aggregate_true) {
    result.verdict = Verdict::kStabilisesTrue;
  } else {
    result.verdict = Verdict::kStabilisesFalse;
  }
  return result;
}

/// (T,F -> T,T), (F,T -> F,F): from a mixed start both consensuses are
/// reachable, so the exact verdict is kDoesNotStabilise with a
/// counterexample.
pp::Protocol make_opinion_protocol() {
  pp::Protocol protocol;
  const pp::State t = protocol.add_state("T");
  const pp::State f = protocol.add_state("F");
  protocol.mark_input(t);
  protocol.mark_input(f);
  protocol.mark_accepting(t);
  protocol.add_transition(t, f, t, t);
  protocol.add_transition(f, t, f, f);
  protocol.finalize();
  return protocol;
}

void expect_matches_oracle(const pp::Protocol& protocol,
                           const pp::Config& initial, bool witness_mode,
                           unsigned threads) {
  const OracleResult expected =
      oracle_verify(protocol, initial, witness_mode, 1'000'000);
  pp::VerifierOptions options;
  options.witness_mode = witness_mode;
  options.threads = threads;
  const pp::VerificationResult actual =
      pp::Verifier(protocol).verify(initial, options);
  EXPECT_EQ(actual.verdict, expected.verdict);
  EXPECT_EQ(actual.explored_configs, expected.nodes);
  EXPECT_EQ(actual.explored_edges, expected.edges);
  EXPECT_EQ(actual.num_sccs, expected.num_sccs);
  EXPECT_EQ(actual.num_bottom_sccs, expected.num_bottom_sccs);
  ASSERT_EQ(actual.counterexample.has_value(),
            expected.counterexample.has_value());
  if (actual.counterexample)
    EXPECT_EQ(*actual.counterexample, *expected.counterexample);
}

TEST(VerifierOracle, MajorityMatchesByteForByte) {
  const pp::Protocol majority = baselines::make_majority();
  for (const unsigned threads : {1u, 4u}) {
    for (u32 a = 0; a <= 4; ++a) {
      for (u32 b = 0; b <= 4; ++b) {
        if (a + b == 0) continue;
        pp::Config initial(majority.num_states());
        initial.add(majority.state("A"), a);
        initial.add(majority.state("B"), b);
        expect_matches_oracle(majority, initial, false, threads);
      }
    }
  }
}

TEST(VerifierOracle, OpinionProtocolCounterexampleMatches) {
  const pp::Protocol opinion = make_opinion_protocol();
  for (const unsigned threads : {1u, 4u}) {
    for (u32 t = 1; t <= 5; ++t) {
      pp::Config initial(opinion.num_states());
      initial.add(opinion.state("T"), t);
      initial.add(opinion.state("F"), 6 - t);
      expect_matches_oracle(opinion, initial, false, threads);
      expect_matches_oracle(opinion, initial, true, threads);
    }
  }
}

TEST(VerifierOracle, ConvertedProtocolMatchesUnderWitnessSemantics) {
  const auto program = progmodel::make_window_program(1, 3);
  const compile::LoweredMachine lowered = compile::lower_program(program);
  compile::ConversionOptions nb;
  nb.with_broadcast = false;
  const compile::ProtocolConversion conv =
      compile::machine_to_protocol(lowered.machine, nb);
  for (u64 m = 0; m <= 2; ++m) {
    const pp::Config initial =
        conv.pi(machine::initial_state(lowered.machine, {0, 0, m}), false);
    expect_matches_oracle(conv.protocol, initial, true, 4);
  }
}

TEST(Verifier, ResourceLimitCarriesPartialCounts) {
  const pp::Protocol majority = baselines::make_majority();
  pp::Config initial(majority.num_states());
  initial.add(majority.state("A"), 12);
  initial.add(majority.state("B"), 11);
  pp::VerifierOptions options;
  options.max_configs = 10;
  const pp::VerificationResult result =
      pp::Verifier(majority).verify(initial, options);
  EXPECT_EQ(result.verdict, pp::VerificationResult::Verdict::kResourceLimit);
  EXPECT_GT(result.explored_configs, 10u);
  EXPECT_GT(result.explored_edges, 0u);
}

TEST(Verifier, ResultsAreIdenticalAcrossThreadCounts) {
  const pp::Protocol majority = baselines::make_majority();
  pp::Config initial(majority.num_states());
  initial.add(majority.state("A"), 6);
  initial.add(majority.state("B"), 5);
  std::vector<pp::VerificationResult> results;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    pp::VerifierOptions options;
    options.threads = threads;
    results.push_back(pp::Verifier(majority).verify(initial, options));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].verdict, results[0].verdict);
    EXPECT_EQ(results[i].explored_configs, results[0].explored_configs);
    EXPECT_EQ(results[i].explored_edges, results[0].explored_edges);
    EXPECT_EQ(results[i].num_sccs, results[0].num_sccs);
    EXPECT_EQ(results[i].num_bottom_sccs, results[0].num_bottom_sccs);
  }
}

// ---------------------------------------------------------------------------
// Pruned exploration

TEST(Verifier, PruneLeavesVerdictAndGraphStatisticsUnchanged) {
  // The conversion protocols are where pruning bites: they carry states no
  // run can occupy. The reachable configuration graphs are isomorphic, so
  // every statistic must match exactly.
  const auto program = progmodel::make_window_program(1, 3);
  const compile::LoweredMachine lowered = compile::lower_program(program);
  compile::ConversionOptions nb;
  nb.with_broadcast = false;
  const compile::ProtocolConversion conv =
      compile::machine_to_protocol(lowered.machine, nb);
  for (u64 m = 0; m <= 2; ++m) {
    const pp::Config initial =
        conv.pi(machine::initial_state(lowered.machine, {0, 0, m}), false);
    pp::VerifierOptions options;
    options.witness_mode = true;
    const pp::VerificationResult plain =
        pp::Verifier(conv.protocol).verify(initial, options);
    options.prune = true;
    options.threads = 4;
    const pp::VerificationResult pruned =
        pp::Verifier(conv.protocol).verify(initial, options);
    EXPECT_EQ(pruned.verdict, plain.verdict) << "m=" << m;
    EXPECT_EQ(pruned.explored_configs, plain.explored_configs) << "m=" << m;
    EXPECT_EQ(pruned.explored_edges, plain.explored_edges) << "m=" << m;
    EXPECT_EQ(pruned.num_sccs, plain.num_sccs) << "m=" << m;
    EXPECT_EQ(pruned.num_bottom_sccs, plain.num_bottom_sccs) << "m=" << m;
  }
}

TEST(Verifier, PruneMapsCounterexampleBackToOriginalStates) {
  // Opinion protocol plus a junk state nothing can reach: pruning drops
  // the state, and the counterexample must still be expressed over the
  // *original* state numbering.
  pp::Protocol protocol;
  const pp::State t = protocol.add_state("T");
  const pp::State junk = protocol.add_state("junk");
  const pp::State f = protocol.add_state("F");
  protocol.mark_input(t);
  protocol.mark_input(f);
  protocol.mark_accepting(t);
  protocol.add_transition(t, f, t, t);
  protocol.add_transition(f, t, f, f);
  protocol.add_transition(junk, junk, t, f);
  protocol.finalize();
  pp::Config initial(protocol.num_states());
  initial.add(t, 2);
  initial.add(f, 2);

  pp::VerifierOptions options;
  const pp::VerificationResult plain =
      pp::Verifier(protocol).verify(initial, options);
  options.prune = true;
  const pp::VerificationResult pruned =
      pp::Verifier(protocol).verify(initial, options);
  ASSERT_EQ(plain.verdict, pp::VerificationResult::Verdict::kDoesNotStabilise);
  ASSERT_TRUE(plain.counterexample.has_value());
  ASSERT_TRUE(pruned.counterexample.has_value());
  EXPECT_EQ(*pruned.counterexample, *plain.counterexample);
  EXPECT_EQ(pruned.counterexample->num_states(), protocol.num_states());
}

// ---------------------------------------------------------------------------
// Program- and machine-level explorers on the kernel

TEST(ProgramExplorer, DecideIsIdenticalAcrossThreadCounts) {
  const auto program = progmodel::make_window_program(2, 5);
  const progmodel::FlatProgram flat = progmodel::FlatProgram::compile(program);
  for (u64 m = 0; m <= 6; ++m) {
    progmodel::ExploreLimits limits;
    const progmodel::DecisionResult sequential =
        progmodel::decide(flat, {0, 0, m}, limits);
    limits.threads = 4;
    const progmodel::DecisionResult parallel =
        progmodel::decide(flat, {0, 0, m}, limits);
    EXPECT_EQ(parallel.verdict, sequential.verdict) << "m=" << m;
    EXPECT_EQ(parallel.explored_nodes, sequential.explored_nodes)
        << "m=" << m;
    // Window semantics: accept iff 2 <= m < 5.
    ASSERT_TRUE(sequential.stabilises()) << "m=" << m;
    EXPECT_EQ(sequential.output(), m >= 2 && m < 5) << "m=" << m;
  }
}

TEST(ProgramExplorer, LimitReportsPartialNodeCount) {
  const auto program = progmodel::make_window_program(2, 5);
  const progmodel::FlatProgram flat = progmodel::FlatProgram::compile(program);
  progmodel::ExploreLimits limits;
  limits.max_nodes = 5;
  const progmodel::DecisionResult result =
      progmodel::decide(flat, {0, 0, 4}, limits);
  EXPECT_EQ(result.verdict, progmodel::DecisionResult::Verdict::kLimit);
  EXPECT_GT(result.explored_nodes, 5u);

  const progmodel::MainAnalysis main = progmodel::analyse_main(
      flat, {0, 0, 4}, limits);
  EXPECT_TRUE(main.limit_hit);
  EXPECT_GT(main.explored_nodes, 5u);
}

TEST(MachineExplorer, DecideIsIdenticalAcrossThreadCounts) {
  const auto program = progmodel::make_window_program(1, 3);
  const compile::LoweredMachine lowered = compile::lower_program(program);
  for (u64 m = 0; m <= 4; ++m) {
    machine::MachineExploreLimits limits;
    const machine::MachineDecision sequential =
        machine::decide_machine(lowered.machine, {0, 0, m}, limits);
    limits.threads = 4;
    const machine::MachineDecision parallel =
        machine::decide_machine(lowered.machine, {0, 0, m}, limits);
    EXPECT_EQ(parallel.verdict, sequential.verdict) << "m=" << m;
    EXPECT_EQ(parallel.explored_nodes, sequential.explored_nodes)
        << "m=" << m;
    ASSERT_TRUE(sequential.stabilises()) << "m=" << m;
    EXPECT_EQ(sequential.output(), m >= 1 && m < 3) << "m=" << m;
  }
}

// ---------------------------------------------------------------------------
// Worklist reachability fixpoint

/// The pre-worklist chaotic iteration, kept as the reference semantics.
std::vector<bool> chaotic_reachable_states(const pp::Protocol& protocol,
                                           const pp::Config& initial) {
  std::vector<bool> occupiable(protocol.num_states(), false);
  for (pp::State q = 0; q < initial.num_states(); ++q)
    if (initial[q] != 0) occupiable[q] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const pp::Transition& t : protocol.transitions()) {
      if (!occupiable[t.q] || !occupiable[t.r]) continue;
      for (const pp::State produced : {t.q2, t.r2}) {
        if (!occupiable[produced]) {
          occupiable[produced] = true;
          changed = true;
        }
      }
    }
  }
  return occupiable;
}

TEST(Reachability, WorklistFixpointMatchesChaoticIteration) {
  const auto program = progmodel::make_window_program(1, 3);
  const compile::LoweredMachine lowered = compile::lower_program(program);
  const compile::ProtocolConversion conv =
      compile::machine_to_protocol(lowered.machine);
  for (u64 m = 0; m <= 3; ++m) {
    const pp::Config initial =
        conv.pi(machine::initial_state(lowered.machine, {0, 0, m}), false);
    EXPECT_EQ(analysis::reachable_states(conv.protocol, initial),
              chaotic_reachable_states(conv.protocol, initial))
        << "m=" << m;
  }
  const pp::Protocol majority = baselines::make_majority();
  for (const char* state : {"A", "B", "a", "b"}) {
    pp::Config initial(majority.num_states());
    initial.add(majority.state(state), 3);
    EXPECT_EQ(analysis::reachable_states(majority, initial),
              chaotic_reachable_states(majority, initial))
        << state;
  }
}

}  // namespace
}  // namespace ppde
