// Tests for the Presburger predicate parser, including a brute-force
// semantic cross-check: every parsed predicate is evaluated against a
// direct interpretation of the source expression on a grid of inputs.
#include "presburger/parser.hpp"

#include <gtest/gtest.h>

#include "bignum/nat.hpp"

namespace ppde::presburger {
namespace {

using bignum::Nat;

std::vector<Nat> in(std::initializer_list<std::uint64_t> values) {
  std::vector<Nat> result;
  for (std::uint64_t v : values) result.emplace_back(v);
  return result;
}

TEST(Parser, SimpleThreshold) {
  auto phi = parse_predicate("x0 >= 5");
  EXPECT_FALSE(phi->evaluate_unary(Nat{4}));
  EXPECT_TRUE(phi->evaluate_unary(Nat{5}));
}

TEST(Parser, AllComparisonOperators) {
  struct Case {
    const char* text;
    bool at4, at5, at6;
  };
  const Case cases[] = {
      {"x0 >= 5", false, true, true}, {"x0 > 5", false, false, true},
      {"x0 <= 5", true, true, false}, {"x0 < 5", true, false, false},
      {"x0 == 5", false, true, false}, {"x0 != 5", true, false, true},
  };
  for (const Case& c : cases) {
    auto phi = parse_predicate(c.text);
    EXPECT_EQ(phi->evaluate_unary(Nat{4}), c.at4) << c.text;
    EXPECT_EQ(phi->evaluate_unary(Nat{5}), c.at5) << c.text;
    EXPECT_EQ(phi->evaluate_unary(Nat{6}), c.at6) << c.text;
  }
}

TEST(Parser, Figure1Window) {
  auto phi = parse_predicate("x0 >= 4 && !(x0 >= 7)");
  for (std::uint64_t x = 0; x <= 10; ++x)
    EXPECT_EQ(phi->evaluate_unary(Nat{x}), x >= 4 && x < 7) << x;
}

TEST(Parser, PrecedenceNotAndOr) {
  // ! binds tighter than &&, && tighter than ||.
  auto phi = parse_predicate("x0 >= 10 || x0 >= 2 && !x0 >= 5");
  // equivalent to: (x0>=10) || ((x0>=2) && !(x0>=5))
  EXPECT_FALSE(phi->evaluate_unary(Nat{1}));
  EXPECT_TRUE(phi->evaluate_unary(Nat{3}));
  EXPECT_FALSE(phi->evaluate_unary(Nat{6}));
  EXPECT_TRUE(phi->evaluate_unary(Nat{12}));
}

TEST(Parser, MultiVariableWithCoefficients) {
  // Majority with margin: x0 - x1 >= 2.
  auto phi = parse_predicate("x0 - x1 >= 2");
  EXPECT_TRUE(phi->evaluate(in({5, 3})));
  EXPECT_FALSE(phi->evaluate(in({4, 3})));
  EXPECT_FALSE(phi->evaluate(in({0, 9})));

  auto scaled = parse_predicate("2*x0 - 3*x1 >= 1");
  EXPECT_TRUE(scaled->evaluate(in({5, 3})));   // 10 - 9 = 1
  EXPECT_FALSE(scaled->evaluate(in({4, 3})));  // 8 - 9 < 1
}

TEST(Parser, ConstantTermsFoldAcrossComparison) {
  // x0 + 3 >= 5  <=>  x0 >= 2.
  auto phi = parse_predicate("x0 + 3 >= 5");
  EXPECT_FALSE(phi->evaluate_unary(Nat{1}));
  EXPECT_TRUE(phi->evaluate_unary(Nat{2}));
  // x0 - 4 >= 1  <=>  x0 >= 5.
  auto shifted = parse_predicate("x0 - 4 >= 1");
  EXPECT_FALSE(shifted->evaluate_unary(Nat{4}));
  EXPECT_TRUE(shifted->evaluate_unary(Nat{5}));
}

TEST(Parser, NegativeBoundNormalisation) {
  // x0 - x1 + 5 >= 2  <=>  x0 - x1 >= -3  <=>  !(x1 - x0 >= 4).
  auto phi = parse_predicate("x0 - x1 + 5 >= 2");
  EXPECT_TRUE(phi->evaluate(in({0, 3})));   // -3 >= -3
  EXPECT_FALSE(phi->evaluate(in({0, 4})));  // -4 < -3
  EXPECT_TRUE(phi->evaluate(in({7, 1})));
}

TEST(Parser, Remainder) {
  auto phi = parse_predicate("x0 % 3 == 1");
  EXPECT_TRUE(phi->evaluate_unary(Nat{1}));
  EXPECT_TRUE(phi->evaluate_unary(Nat{7}));
  EXPECT_FALSE(phi->evaluate_unary(Nat{6}));
}

TEST(Parser, HugeThresholdConstant) {
  auto phi = parse_predicate(
      "x0 >= 340282366920938463463374607431768211456");  // 2^128
  EXPECT_FALSE(phi->evaluate_unary(Nat::pow2(128) - Nat{1}));
  EXPECT_TRUE(phi->evaluate_unary(Nat::pow2(128)));
  EXPECT_GE(phi->size(), 128u);
}

TEST(Parser, BooleanConstants) {
  EXPECT_TRUE(parse_predicate("true")->evaluate({}));
  EXPECT_FALSE(parse_predicate("false")->evaluate({}));
  EXPECT_FALSE(parse_predicate("!true")->evaluate({}));
  EXPECT_TRUE(parse_predicate("true && !false")->evaluate({}));
}

TEST(Parser, WhitespaceInsensitive) {
  auto a = parse_predicate("x0>=4&&!(x0>=7)");
  auto b = parse_predicate("  x0   >= 4   &&   ! ( x0 >= 7 ) ");
  for (std::uint64_t x = 0; x <= 8; ++x)
    EXPECT_EQ(a->evaluate_unary(Nat{x}), b->evaluate_unary(Nat{x}));
}

TEST(Parser, Rejections) {
  for (const char* bad :
       {"", "x", "x0", "x0 >=", ">= 4", "x0 >= 4 &&", "x0 >= 4)",
        "(x0 >= 4", "x0 % 0 == 1", "x0 % 3 = 1", "x0 ** 2 >= 1",
        "x0 >= 4 x1 >= 2", "truex", "x0 + 1 % 3 == 1"}) {
    EXPECT_THROW(parse_predicate(bad), std::invalid_argument) << bad;
  }
}

TEST(Parser, RoundTripAgainstConstruction) {
  // The predicate the paper's protocol decides, written as text.
  const Nat k = Nat::from_decimal("918070");  // k(5)
  auto phi = parse_predicate("x0 >= 918070");
  EXPECT_FALSE(phi->evaluate_unary(k - Nat{1}));
  EXPECT_TRUE(phi->evaluate_unary(k));
}

}  // namespace
}  // namespace ppde::presburger
