// Tests for population programs (Section 4): builder, size measure, flat
// lowering, the randomized runner, and the exhaustive explorer — including
// the full decision check of the Figure-1 program.
#include <gtest/gtest.h>

#include <cstdint>

#include "progmodel/ast.hpp"
#include "progmodel/builder.hpp"
#include "progmodel/explore.hpp"
#include "progmodel/flat.hpp"
#include "progmodel/interp.hpp"
#include "progmodel/sample_programs.hpp"

namespace ppde::progmodel {
namespace {

// -- builder / AST -----------------------------------------------------------

TEST(Builder, DuplicateRegisterThrows) {
  ProgramBuilder b;
  b.reg("x");
  EXPECT_THROW(b.reg("x"), std::invalid_argument);
}

TEST(Builder, CyclicCallsRejected) {
  ProgramBuilder b;
  const ProcRef f = b.declare_proc("F", false);
  const ProcRef g = b.declare_proc("G", false);
  b.define(f, [&](BlockBuilder& s) { s.call(g); });
  b.define(g, [&](BlockBuilder& s) { s.call(f); });
  EXPECT_THROW(std::move(b).build(f), std::logic_error);
}

TEST(Builder, SelfRecursionRejected) {
  ProgramBuilder b;
  const ProcRef f = b.declare_proc("F", false);
  b.define(f, [&](BlockBuilder& s) { s.call(f); });
  EXPECT_THROW(std::move(b).build(f), std::logic_error);
}

TEST(Builder, VoidProcedureAsConditionRejected) {
  ProgramBuilder b;
  const ProcRef noop = b.proc("Noop", false, [](BlockBuilder& s) {
    s.return_void();
  });
  const ProcRef main = b.proc("Main", false, [&](BlockBuilder& s) {
    s.if_(s.call_cond(noop), [](BlockBuilder&) {});
  });
  EXPECT_THROW(std::move(b).build(main), std::logic_error);
}

TEST(Builder, SwapWithSelfRejected) {
  ProgramBuilder b;
  const Reg x = b.reg("x");
  const ProcRef main =
      b.proc("Main", false, [&](BlockBuilder& s) { s.swap(x, x); });
  EXPECT_THROW(std::move(b).build(main), std::logic_error);
}

TEST(Ast, Figure1SwapSizeIsTwo) {
  // The paper computes swap-size 2 for Figure 1: only (x, y) and (y, x).
  const Program program = make_figure1_program();
  EXPECT_EQ(program.size().swap_size, 2u);
}

TEST(Ast, SwapSizeGrowsTransitively) {
  // Adding swap y, z makes all 6 ordered pairs of {x, y, z} swappable.
  ProgramBuilder b;
  const Reg x = b.reg("x");
  const Reg y = b.reg("y");
  const Reg z = b.reg("z");
  const ProcRef main = b.proc("Main", false, [&](BlockBuilder& s) {
    s.swap(x, y);
    s.swap(y, z);
  });
  const Program program = std::move(b).build(main);
  EXPECT_EQ(program.size().swap_size, 6u);
}

TEST(Ast, ThresholdProgramSizeGrowsLinearly) {
  const auto s4 = make_threshold_program(4).size();
  const auto s8 = make_threshold_program(8).size();
  const auto s16 = make_threshold_program(16).size();
  // Test(k) expands the for-loop k times: L grows linearly in k, so the
  // increment doubles when the threshold increment doubles.
  EXPECT_EQ(s16.num_instructions - s8.num_instructions,
            2 * (s8.num_instructions - s4.num_instructions));
  EXPECT_GT(s16.num_instructions, s8.num_instructions);
}

TEST(Ast, PrettyPrinterMentionsAllProcedures) {
  const std::string text = make_figure1_program().to_string();
  EXPECT_NE(text.find("procedure Main"), std::string::npos);
  EXPECT_NE(text.find("procedure Test(4)"), std::string::npos);
  EXPECT_NE(text.find("procedure Test(7)"), std::string::npos);
  EXPECT_NE(text.find("procedure Clean"), std::string::npos);
  EXPECT_NE(text.find("restart"), std::string::npos);
}

TEST(Ast, CalleesOfMain) {
  const Program program = make_figure1_program();
  const auto callees = program.callees(program.main_proc);
  EXPECT_EQ(callees.size(), 3u);  // Test(4), Test(7), Clean
}

// -- flat lowering -----------------------------------------------------------

TEST(Flat, PrologueCallsMainThenHalts) {
  const FlatProgram flat = FlatProgram::compile(make_figure1_program());
  ASSERT_GE(flat.ops.size(), 2u);
  EXPECT_EQ(flat.ops[0].kind, FlatOp::Kind::kCall);
  EXPECT_EQ(flat.ops[0].a, flat.main_proc);
  EXPECT_EQ(flat.ops[1].kind, FlatOp::Kind::kHalt);
}

TEST(Flat, EveryJumpTargetInRange) {
  const FlatProgram flat = FlatProgram::compile(make_figure1_program());
  for (const FlatOp& op : flat.ops) {
    if (op.kind == FlatOp::Kind::kJump) {
      EXPECT_LT(op.a, flat.ops.size());
    }
    if (op.kind == FlatOp::Kind::kBranch) {
      EXPECT_LT(op.a, flat.ops.size());
      EXPECT_LT(op.b, flat.ops.size());
    }
    if (op.kind == FlatOp::Kind::kCall) {
      EXPECT_LT(flat.proc_entry[op.a], flat.ops.size());
    }
  }
}

TEST(Flat, ListingRoundTripsThroughToString) {
  const FlatProgram flat = FlatProgram::compile(make_figure3_program());
  const std::string text = flat.to_string();
  EXPECT_NE(text.find("x -> y"), std::string::npos);
  EXPECT_NE(text.find("swap x, y"), std::string::npos);
  EXPECT_NE(text.find("CF := detect x > 0"), std::string::npos);
}

// -- compositions helper -----------------------------------------------------

TEST(Compositions, CountsMatchStarsAndBars) {
  EXPECT_EQ(all_compositions(0, 3).size(), 1u);
  EXPECT_EQ(all_compositions(5, 1).size(), 1u);
  EXPECT_EQ(all_compositions(5, 2).size(), 6u);
  EXPECT_EQ(all_compositions(4, 3).size(), 15u);  // C(6,2)
  for (const auto& c : all_compositions(4, 3)) {
    EXPECT_EQ(c.size(), 3u);
    EXPECT_EQ(c[0] + c[1] + c[2], 4u);
  }
}

// -- exhaustive explorer: post sets -------------------------------------------

class Fig1Post : public ::testing::Test {
 protected:
  Fig1Post() : program_(make_figure1_program()),
               flat_(FlatProgram::compile(program_)) {}

  ProcId proc(const std::string& name) const {
    for (ProcId id = 0; id < program_.procedures.size(); ++id)
      if (program_.procedures[id].name == name) return id;
    throw std::out_of_range(name);
  }

  Program program_;
  FlatProgram flat_;
};

TEST_F(Fig1Post, TestProcMovesUnitsOnSuccess) {
  // Test(4) from x=5: may return true having moved 4 units, or false
  // having moved 0..3 (detect may fail spuriously at any point).
  const PostResult result = explore_post(flat_, proc("Test(4)"), {5, 0, 0});
  EXPECT_FALSE(result.can_restart);
  EXPECT_FALSE(result.can_diverge);
  EXPECT_TRUE(result.contains({1, 4, 0}, 1));
  for (std::uint64_t moved = 0; moved < 4; ++moved)
    EXPECT_TRUE(result.contains({5 - moved, moved, 0}, 0)) << moved;
  EXPECT_EQ(result.outcomes.size(), 5u);
}

TEST_F(Fig1Post, TestProcCannotSucceedWithoutEnoughAgents) {
  const PostResult result = explore_post(flat_, proc("Test(4)"), {3, 1, 0});
  for (const auto& outcome : result.outcomes) EXPECT_NE(outcome.ret, 1);
  EXPECT_TRUE(result.contains({3, 1, 0}, 0));
}

TEST_F(Fig1Post, CleanRestartsOnJunk) {
  const PostResult result = explore_post(flat_, proc("Clean"), {1, 1, 1});
  EXPECT_TRUE(result.can_restart);
}

TEST_F(Fig1Post, CleanNeverRestartsWithoutJunk) {
  const PostResult result = explore_post(flat_, proc("Clean"), {2, 3, 0});
  EXPECT_FALSE(result.can_restart);
  EXPECT_FALSE(result.can_diverge);
  // Clean swaps x/y then drains y -> x: outcomes are (y+t, x-t) over old
  // values; all settle with total 5.
  for (const auto& outcome : result.outcomes) {
    EXPECT_EQ(outcome.regs[0] + outcome.regs[1], 5u);
    EXPECT_EQ(outcome.ret, -1);
  }
  EXPECT_TRUE(result.contains({5, 0, 0}, -1));
}

TEST_F(Fig1Post, PostIsExactOnTinyCase) {
  // Test(4) from x=0: only outcome is immediate false.
  const PostResult result = explore_post(flat_, proc("Test(4)"), {0, 0, 0});
  EXPECT_EQ(result.outcomes.size(), 1u);
  EXPECT_TRUE(result.contains({0, 0, 0}, 0));
  EXPECT_TRUE(result.returns_only());
}

// -- exhaustive explorer: whole-program decision -------------------------------

TEST(Fig1Decide, DecidesWindowPredicateForAllSmallInputs) {
  const FlatProgram flat = FlatProgram::compile(make_figure1_program());
  for (std::uint64_t m = 0; m <= 10; ++m) {
    // Adversarial initial distribution: everything in z.
    const DecisionResult result = decide(flat, {0, 0, m});
    ASSERT_TRUE(result.stabilises()) << "m=" << m;
    EXPECT_EQ(result.output(), m >= 4 && m < 7) << "m=" << m;
  }
}

TEST(Fig1Decide, VerdictIndependentOfInitialDistribution) {
  const FlatProgram flat = FlatProgram::compile(make_figure1_program());
  for (const auto& initial : all_compositions(5, 3)) {
    const DecisionResult result = decide(flat, initial);
    ASSERT_TRUE(result.stabilises());
    EXPECT_TRUE(result.output()) << "m=5 must be accepted";
  }
  for (const auto& initial : all_compositions(8, 3)) {
    const DecisionResult result = decide(flat, initial);
    ASSERT_TRUE(result.stabilises());
    EXPECT_FALSE(result.output()) << "m=8 must be rejected";
  }
}

TEST(ThresholdProgram, DecidesThresholdExhaustively) {
  const FlatProgram flat = FlatProgram::compile(make_threshold_program(3));
  for (std::uint64_t m = 0; m <= 6; ++m) {
    const DecisionResult result = decide(flat, {m, 0});
    ASSERT_TRUE(result.stabilises()) << "m=" << m;
    EXPECT_EQ(result.output(), m >= 3) << "m=" << m;
  }
}

TEST(MainAnalysis, Figure1GoodAndBadConfigs) {
  const FlatProgram flat = FlatProgram::compile(make_figure1_program());
  {
    // Good accepting config: all 5 agents in x, z empty.
    const MainAnalysis analysis = analyse_main(flat, {5, 0, 0});
    EXPECT_TRUE(analysis.may_stabilise_true);
    EXPECT_FALSE(analysis.has_mixed_bscc);
  }
  {
    // z occupied: it must not stabilise; every fair run restarts.
    const MainAnalysis analysis = analyse_main(flat, {4, 0, 1});
    EXPECT_TRUE(analysis.always_restarts());
  }
}


class WindowSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(WindowSweep, DecidesItsWindowExhaustively) {
  const auto [lo, hi] = GetParam();
  const FlatProgram flat = FlatProgram::compile(make_window_program(lo, hi));
  for (std::uint64_t m = 0; m <= hi + 2; ++m) {
    const DecisionResult result = decide(flat, {0, 0, m});
    ASSERT_TRUE(result.stabilises()) << "lo=" << lo << " hi=" << hi
                                     << " m=" << m;
    EXPECT_EQ(result.output(), m >= lo && m < hi)
        << "lo=" << lo << " hi=" << hi << " m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweep,
                         ::testing::Values(std::tuple{2u, 5u},
                                           std::tuple{1u, 2u},
                                           std::tuple{3u, 8u}));

TEST(WindowProgram, RejectsDegenerateBounds) {
  EXPECT_THROW(make_window_program(0, 3), std::invalid_argument);
  EXPECT_THROW(make_window_program(4, 4), std::invalid_argument);
  EXPECT_THROW(make_threshold_program(0), std::invalid_argument);
}

// -- randomized runner ---------------------------------------------------------

TEST(Runner, WrongRegisterCountThrows) {
  const FlatProgram flat = FlatProgram::compile(make_figure1_program());
  EXPECT_THROW(Runner(flat, {1, 2}, 1), std::invalid_argument);
}

class Fig1Random : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fig1Random, AgreesWithPredicate) {
  const std::uint64_t m = GetParam();
  const FlatProgram flat = FlatProgram::compile(make_figure1_program());
  Runner runner(flat, {0, 0, m}, /*seed=*/77 + m);
  RunOptions options;
  options.stable_window = 200'000;
  options.max_steps = 80'000'000;
  const RunResult result = runner.run(options);
  ASSERT_TRUE(result.stabilised) << "m=" << m;
  EXPECT_FALSE(result.hung);
  EXPECT_EQ(result.output, m >= 4 && m < 7) << "m=" << m;
}

INSTANTIATE_TEST_SUITE_P(Inputs, Fig1Random,
                         ::testing::Values(0, 1, 3, 4, 5, 6, 7, 9, 12));

TEST(Runner, RegisterTotalConservedAcrossRestarts) {
  const FlatProgram flat = FlatProgram::compile(make_figure1_program());
  Runner runner(flat, {2, 1, 3}, 5);
  for (int i = 0; i < 200'000; ++i) runner.step();
  std::uint64_t total = 0;
  for (std::uint64_t v : runner.registers()) total += v;
  EXPECT_EQ(total, 6u);
  EXPECT_GT(runner.restarts(), 0u) << "z was occupied: restarts must happen";
}

}  // namespace
}  // namespace ppde::progmodel
