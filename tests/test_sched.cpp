// Tests for the adversarial scheduling & fault-injection subsystem
// (DESIGN.md S27): the scenario descriptor grammar (canonicalisation and
// malformed-input rejection), the scheduler strategies' adjacency laws,
// the fault plans' timing and population bounds, bit-identical
// trajectories across dispatch cores and against the pre-S27 uniform
// path (clique is the differential anchor: same meeting law, different
// digest scope), scenario-scoped certificate digests that are stable
// across thread counts, the pre-S27 bit-compatibility of
// analysis::random_noise, and the serve wire (scenario field omission,
// admission-time rejection, worker-count-independent digests).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "analysis/robustness.hpp"
#include "baselines/majority.hpp"
#include "bignum/nat.hpp"
#include "compile/lower.hpp"
#include "compile/to_protocol.hpp"
#include "czerner/construction.hpp"
#include "engine/ensemble.hpp"
#include "pp/simulator.hpp"
#include "sched/fault.hpp"
#include "sched/scenario.hpp"
#include "sched/scheduler.hpp"
#include "serve/client.hpp"
#include "serve/proto.hpp"
#include "serve/server.hpp"
#include "smc/certify.hpp"
#include "smc/json.hpp"
#include "support/rng.hpp"

namespace ppde {
namespace {

using sched::FaultKind;
using sched::FaultSpec;
using sched::Scenario;
using sched::SchedKind;
using sched::SchedulerSpec;

// ---------------------------------------------------------------------------
// Scenario grammar.

TEST(Scenario, CanonicalDescriptorsRoundTrip) {
  for (const char* text : {
           "uniform", "clique", "ring", "grid", "grid:5", "regular:4",
           "regular:6", "biased:4", "biased:0.25", "aging",
           "ring+corrupt:0.001", "uniform+corrupt:0.5,3",
           "aging+churn:0.01,8", "clique+churn:0.25",
           "grid:3+burst:100,2;500,1",
       }) {
    const Scenario scenario = Scenario::parse(text);
    EXPECT_EQ(scenario.to_string(), text) << text;
    EXPECT_EQ(Scenario::parse(scenario.to_string()), scenario) << text;
  }
}

TEST(Scenario, NonCanonicalInputIsCanonicalised) {
  // Numbers re-render in shortest round-trippable form; defaulted
  // parameters are omitted; burst schedules sort by meeting index.
  EXPECT_EQ(Scenario::parse("biased:4.0").to_string(), "biased:4");
  EXPECT_EQ(Scenario::parse("regular").to_string(), "regular:4");
  EXPECT_EQ(Scenario::parse("uniform+corrupt:0.50,1").to_string(),
            "uniform+corrupt:0.5");
  EXPECT_EQ(Scenario::parse("uniform+churn:0.125,0").to_string(),
            "uniform+churn:0.125");
  EXPECT_EQ(Scenario::parse("uniform+burst:500,1;100,2").to_string(),
            "uniform+burst:100,2;500,1");
}

TEST(Scenario, RejectsMalformedDescriptors) {
  for (const char* text : {
           "", "nope", "uniform:3", "clique:2", "ring:1", "grid:1",
           "grid:x", "regular:3", "regular:0", "biased:1", "biased:0",
           "biased:-2", "aging:1", "uniform+", "uniform+none:1",
           "uniform+corrupt", "uniform+corrupt:0", "uniform+corrupt:2",
           "uniform+corrupt:0.5,0", "uniform+corrupt:0.5,1,2",
           "uniform+churn:-0.5", "uniform+churn:abc", "uniform+burst:",
           "uniform+burst:5", "uniform+burst:5,0", "uniform+burst:5,2;7",
       }) {
    EXPECT_THROW(Scenario::parse(text), std::invalid_argument) << text;
  }
}

TEST(Scenario, DefaultDetection) {
  EXPECT_TRUE(Scenario{}.is_default());
  EXPECT_TRUE(Scenario::parse("uniform").is_default());
  EXPECT_FALSE(Scenario::parse("clique").is_default());
  EXPECT_FALSE(Scenario::parse("uniform+corrupt:0.1").is_default());
}

// ---------------------------------------------------------------------------
// Seed derivation (satellite: the hoisted support::derive_trial_seed is
// the one canonical implementation).

TEST(SeedDerivation, EngineMatchesSupport) {
  for (const std::uint64_t master : {0ull, 1ull, 42ull, ~0ull, 0xdeadbeefull})
    for (const std::uint64_t trial : {0ull, 1ull, 7ull, 1000ull, 1048576ull})
      EXPECT_EQ(engine::derive_trial_seed(master, trial),
                support::derive_trial_seed(master, trial))
          << master << "/" << trial;
}

TEST(SeedDerivation, StreamTagsSplitDistinctStreams) {
  const std::uint64_t seed = 0x1234'5678'9abc'def0ull;
  const std::uint64_t topo =
      support::derive_trial_seed(seed, sched::kTopologyStream);
  const std::uint64_t fault =
      support::derive_trial_seed(seed, sched::kFaultStream);
  EXPECT_NE(topo, seed);
  EXPECT_NE(fault, seed);
  EXPECT_NE(topo, fault);
}

// ---------------------------------------------------------------------------
// Scheduler strategies: adjacency laws, straight off the interface.

std::unique_ptr<sched::Scheduler> loaded_scheduler(const char* text,
                                                   std::uint64_t m,
                                                   support::Rng& topo) {
  auto scheduler = sched::make_scheduler(sched::parse_scheduler(text));
  if (scheduler) scheduler->on_population(m, topo);
  return scheduler;
}

TEST(Scheduler, UniformHasNoStrategyObject) {
  EXPECT_EQ(sched::make_scheduler(SchedulerSpec{}), nullptr);
}

TEST(Scheduler, RingMeetsOnlyNeighbours) {
  support::Rng rng(1), topo(2);
  const std::uint64_t m = 8;
  auto ring = loaded_scheduler("ring", m, topo);
  ASSERT_NE(ring, nullptr);
  sched::PickContext ctx{rng, m};
  for (int k = 0; k < 2000; ++k) {
    std::uint64_t i = 0, j = 0;
    ASSERT_TRUE(ring->pick(ctx, &i, &j));
    ASSERT_NE(i, j);
    const std::uint64_t diff = (j + m - i) % m;
    EXPECT_TRUE(diff == 1 || diff == m - 1) << i << "->" << j;
  }
}

TEST(Scheduler, GridMeetsAlongCirculantOffsets) {
  support::Rng rng(1), topo(2);
  const std::uint64_t m = 16;
  auto grid = loaded_scheduler("grid:4", m, topo);
  ASSERT_NE(grid, nullptr);
  sched::PickContext ctx{rng, m};
  for (int k = 0; k < 2000; ++k) {
    std::uint64_t i = 0, j = 0;
    ASSERT_TRUE(grid->pick(ctx, &i, &j));
    const std::uint64_t diff = (j + m - i) % m;
    EXPECT_TRUE(diff == 1 || diff == m - 1 || diff == 4 || diff == m - 4)
        << i << "->" << j;
  }
}

TEST(Scheduler, RegularGraphRespectsDegreeBound) {
  support::Rng rng(1), topo(2);
  const std::uint64_t m = 10;
  auto regular = loaded_scheduler("regular:4", m, topo);
  ASSERT_NE(regular, nullptr);
  sched::PickContext ctx{rng, m};
  std::vector<std::set<std::uint64_t>> neighbours(m);
  for (int k = 0; k < 5000; ++k) {
    std::uint64_t i = 0, j = 0;
    if (!regular->pick(ctx, &i, &j)) continue;  // self-loop edge: null meeting
    ASSERT_NE(i, j);
    neighbours[i].insert(j);
  }
  for (std::uint64_t i = 0; i < m; ++i)
    EXPECT_LE(neighbours[i].size(), 4u) << "slot " << i;
}

TEST(Scheduler, AgingInitiatorIsLeastRecentlyMet) {
  support::Rng rng(1), topo(2);
  const std::uint64_t m = 6;
  auto aging = loaded_scheduler("aging", m, topo);
  ASSERT_NE(aging, nullptr);
  sched::PickContext ctx{rng, m};
  // Fresh load: recency order is slot order, so slot 0 initiates first.
  std::uint64_t i = 0, j = 0;
  ASSERT_TRUE(aging->pick(ctx, &i, &j));
  EXPECT_EQ(i, 0u);
  aging->on_meeting(i, j);
  // The quota invariant: no agent waits longer than m meetings to appear,
  // because each meeting retires the currently longest-waiting agent.
  std::vector<int> last_met(m, 0);
  for (int meeting = 1; meeting <= 200; ++meeting) {
    ASSERT_TRUE(aging->pick(ctx, &i, &j));
    ASSERT_NE(i, j);
    aging->on_meeting(i, j);
    last_met[i] = last_met[j] = meeting;
    for (std::uint64_t a = 0; a < m; ++a)
      EXPECT_GE(last_met[a], meeting - static_cast<int>(m)) << "slot " << a;
  }
}

// ---------------------------------------------------------------------------
// Simulator integration on the 4-state majority baseline (cheap, and its
// two input states exercise churn arrivals).

struct MajorityFixture : ::testing::Test {
  pp::Protocol protocol = baselines::make_majority();
  pp::Config initial = baselines::majority_initial(protocol, 12, 8);

  pp::SimulationOptions quick(std::uint64_t budget = 200'000,
                              std::uint64_t window = 2'000) const {
    pp::SimulationOptions options;
    options.max_interactions = budget;
    options.stable_window = window;
    return options;
  }
};

void expect_same_run(const pp::SimulationResult& a,
                     const pp::SimulationResult& b) {
  EXPECT_EQ(a.stabilised, b.stabilised);
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.interactions, b.interactions);
  EXPECT_EQ(a.consensus_since, b.consensus_since);
}

TEST_F(MajorityFixture, DefaultScenarioMatchesPlainConstructorBitForBit) {
  pp::Simulator plain(protocol, initial, /*seed=*/9);
  pp::Simulator scenario(protocol, initial, Scenario{}, /*seed=*/9);
  const auto a = plain.run_until_stable(quick());
  const auto b = scenario.run_until_stable(quick());
  expect_same_run(a, b);
  EXPECT_EQ(plain.config(), scenario.config());
  EXPECT_EQ(scenario.fault_stats(), nullptr);
}

TEST_F(MajorityFixture, CliqueIsTheUniformMeetingLawDifferentialAnchor) {
  // The clique strategy routes through the full strategy machinery but
  // draws the exact uniform ordered-pair law, draw for draw — any drift
  // in the strategy plumbing shows up here as a trajectory divergence.
  pp::Simulator plain(protocol, initial, /*seed=*/9);
  pp::Simulator clique(protocol, initial, Scenario::parse("clique"),
                       /*seed=*/9);
  const auto a = plain.run_until_stable(quick());
  const auto b = clique.run_until_stable(quick());
  expect_same_run(a, b);
  EXPECT_EQ(plain.config(), clique.config());
}

TEST_F(MajorityFixture, TrajectoriesBitIdenticalAcrossDispatchCores) {
  for (const char* text :
       {"ring", "grid", "regular:4", "biased:4", "aging",
        "uniform+corrupt:0.001", "ring+burst:500,2", "aging+churn:0.002"}) {
    const Scenario scenario = Scenario::parse(text);
    pp::Simulator interp(protocol, initial, scenario, /*seed=*/5,
                         isa::Dispatch::kInterp);
    pp::Simulator bytecode(protocol, initial, scenario, /*seed=*/5,
                           isa::Dispatch::kBytecode);
    const auto a = interp.run_until_stable(quick());
    const auto b = bytecode.run_until_stable(quick());
    expect_same_run(a, b);
    EXPECT_EQ(interp.config(), bytecode.config()) << text;
  }
}

TEST_F(MajorityFixture, ScenarioRunsAreSeedDeterministic) {
  for (const char* text : {"ring", "biased:0.5", "uniform+churn:0.01"}) {
    const Scenario scenario = Scenario::parse(text);
    pp::Simulator first(protocol, initial, scenario, /*seed=*/11);
    pp::Simulator second(protocol, initial, scenario, /*seed=*/11);
    const auto a = first.run_until_stable(quick());
    const auto b = second.run_until_stable(quick());
    expect_same_run(a, b);
    EXPECT_EQ(first.config(), second.config()) << text;
  }
}

TEST_F(MajorityFixture, FaultsDrawFromTheirOwnStreamNotTheMeetingStream) {
  // A burst scheduled far beyond the horizon must leave the meeting
  // sequence untouched: the fault stream is split off the trial seed, so
  // an armed-but-idle plan consumes nothing the scheduler sees.
  pp::Simulator plain(protocol, initial, /*seed=*/13);
  pp::Simulator armed(protocol, initial,
                      Scenario::parse("uniform+burst:900000000,5"),
                      /*seed=*/13);
  const auto a = plain.run_until_stable(quick());
  const auto b = armed.run_until_stable(quick());
  expect_same_run(a, b);
  EXPECT_EQ(plain.config(), armed.config());
}

TEST_F(MajorityFixture, BurstFiresAtScheduledMeetingIndices) {
  pp::Simulator sim(protocol, initial,
                    Scenario::parse("uniform+burst:100,3;200,1"),
                    /*seed=*/3);
  const auto result = sim.run_until_stable(quick(/*budget=*/300,
                                                 /*window=*/1u << 30));
  EXPECT_FALSE(result.stabilised);
  const sched::FaultStats* stats = sim.fault_stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->events, 2u);
  EXPECT_EQ(stats->corruptions, 4u);
  EXPECT_EQ(stats->arrivals, 0u);
  EXPECT_EQ(stats->departures, 0u);
}

TEST_F(MajorityFixture, ChurnKeepsPopulationWithinBounds) {
  const std::uint64_t start = initial.total();
  pp::Simulator sim(protocol, initial, Scenario::parse("uniform+churn:0.05,4"),
                    /*seed=*/17);
  for (int step = 0; step < 20'000; ++step) {
    sim.step();
    ASSERT_GE(sim.population(), 2u);
    ASSERT_LE(sim.population(), start + 4);
  }
  const sched::FaultStats* stats = sim.fault_stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->arrivals, 0u);
  EXPECT_GT(stats->departures, 0u);
  EXPECT_EQ(stats->events, stats->arrivals + stats->departures);
}

// ---------------------------------------------------------------------------
// Ensemble: non-default scenarios fall back to the per-agent simulator
// but stay thread-count-deterministic.

TEST_F(MajorityFixture, EnsembleFallsBackToPerAgentAndStaysDeterministic) {
  engine::EnsembleOptions options;
  options.trials = 8;
  options.master_seed = 21;
  options.engine = engine::EngineKind::kCountNullSkip;
  options.scenario = Scenario::parse("ring+corrupt:0.0001");
  options.sim = quick();

  options.threads = 1;
  const engine::EnsembleStats one = engine::run_ensemble(protocol, initial,
                                                         options);
  options.threads = 4;
  const engine::EnsembleStats four = engine::run_ensemble(protocol, initial,
                                                          options);
  // The count engine's signature counters stay zero: the executor routed
  // every trial through the per-agent simulator.
  EXPECT_EQ(one.totals.null_skip_batches, 0u);
  EXPECT_EQ(one.totals.tree_descents, 0u);
  EXPECT_GT(one.totals.meetings, 0u);
  EXPECT_EQ(one.trials, four.trials);
  EXPECT_EQ(one.stabilised, four.stabilised);
  EXPECT_EQ(one.accepted, four.accepted);
  EXPECT_EQ(one.totals.meetings, four.totals.meetings);
  EXPECT_EQ(one.totals.firings, four.totals.firings);
  EXPECT_DOUBLE_EQ(one.interactions.p50, four.interactions.p50);
}

// ---------------------------------------------------------------------------
// Certification: the scenario descriptor is part of the certified
// statement (digest-scoped), and certificates stay reproducible at every
// thread count and on both dispatch cores.

struct CertifyN1 : ::testing::Test {
  CertifyN1()
      : lowered_(compile::lower_program(
            czerner::build_construction(1).program)),
        conv_(compile::machine_to_protocol(lowered_.machine)) {}

  smc::CertifyOptions cheap_options() const {
    smc::CertifyOptions options;
    options.seed = 7;
    options.max_trials = 24;
    options.delta = 0.1;
    options.indifference = 0.8;
    // Deliberately tiny: digest scoping and thread/dispatch stability do
    // not require stabilising trials, and a stressed trial that exhausts
    // its budget costs the full budget on the per-agent simulator.
    options.sim.stable_window = 200'000;
    options.sim.max_interactions = 2'000'000;
    return options;
  }

  smc::Certificate certify(const smc::CertifyOptions& options) const {
    const std::uint64_t m = conv_.num_pointers + 2;
    const bool expected =
        bignum::Nat(2) >= czerner::Construction::threshold(1);
    return smc::certify(conv_.protocol, conv_.initial_config(m), expected,
                        options);
  }

  compile::LoweredMachine lowered_;
  compile::ProtocolConversion conv_;
};

TEST_F(CertifyN1, DefaultScenarioOmitsTheFieldEntirely) {
  const smc::Certificate cert = certify(cheap_options());
  EXPECT_TRUE(cert.scenario.empty());
  EXPECT_EQ(smc::to_jsonl(cert).find("scenario"), std::string::npos);
}

TEST_F(CertifyN1, ScenarioScopesTheDigest) {
  smc::CertifyOptions options = cheap_options();
  const smc::Certificate plain = certify(options);
  options.scenario = Scenario::parse("ring");
  const smc::Certificate ring = certify(options);
  EXPECT_EQ(ring.scenario, "ring");
  EXPECT_NE(smc::to_jsonl(ring).find("\"scenario\":\"ring\""),
            std::string::npos);
  EXPECT_NE(smc::certificate_digest(plain), smc::certificate_digest(ring));
  EXPECT_NE(smc::describe(ring).find("ring"), std::string::npos);
}

TEST_F(CertifyN1, ScenarioDigestIsThreadAndDispatchIndependent) {
  smc::CertifyOptions options = cheap_options();
  options.scenario = Scenario::parse("biased:4+corrupt:0.0001");
  options.threads = 1;
  const std::uint64_t reference = smc::certificate_digest(certify(options));
  options.threads = 4;
  EXPECT_EQ(smc::certificate_digest(certify(options)), reference);
  options.threads = 1;
  options.dispatch = isa::Dispatch::kInterp;
  EXPECT_EQ(smc::certificate_digest(certify(options)), reference);
}

// ---------------------------------------------------------------------------
// Robustness (satellite): random_noise now draws through the S27 noise
// primitive; its output must be bit-identical to the pre-S27 inline loop.

TEST(Robustness, RandomNoiseIsBitIdenticalToPreS27Loop) {
  const pp::Protocol protocol = baselines::make_majority();
  const std::vector<pp::State> pool = {1, 3};
  for (const bool use_pool : {false, true}) {
    support::Rng actual_rng(99), oracle_rng(99);
    for (std::uint32_t agents : {0u, 1u, 7u, 64u}) {
      const pp::Config actual = analysis::random_noise(
          protocol, agents, actual_rng, use_pool ? &pool : nullptr);
      // Verbatim pre-S27 loop body.
      pp::Config oracle(protocol.num_states());
      for (std::uint32_t i = 0; i < agents; ++i)
        oracle.add(use_pool
                       ? pool[oracle_rng.below(pool.size())]
                       : static_cast<pp::State>(
                             oracle_rng.below(protocol.num_states())));
      EXPECT_EQ(actual, oracle) << agents << "/" << use_pool;
    }
    // Identical RNG consumption, not just identical outputs.
    EXPECT_EQ(actual_rng(), oracle_rng());
  }
}

// ---------------------------------------------------------------------------
// Serve wire: the scenario field is omitted when default, round-trips
// when present, is rejected at admission when malformed, and the daemon's
// scenario certificates are worker-count-independent.

TEST(ServeProto, QueryScenarioOmittedWhenDefaultAndRoundTripsOtherwise) {
  serve::QueryParams query;
  query.req = "certify";
  EXPECT_EQ(serve::encode_query(query).find("scenario"), std::string::npos);
  query.scenario = "ring+corrupt:0.001";
  const serve::QueryParams decoded =
      serve::parse_query(serve::Json::parse(serve::encode_query(query)));
  EXPECT_EQ(decoded.scenario, "ring+corrupt:0.001");
  EXPECT_EQ(serve::certify_options_of(decoded).scenario,
            Scenario::parse("ring+corrupt:0.001"));
}

TEST(ServeProto, BatchRequestScenarioRoundTrips) {
  serve::BatchRequest request;
  request.n = 1;
  EXPECT_EQ(serve::encode_batch_request(request).find("scenario"),
            std::string::npos);
  request.scenario = "aging+churn:0.01";
  const serve::BatchRequest decoded = serve::parse_batch_request(
      serve::Json::parse(serve::encode_batch_request(request)));
  EXPECT_EQ(decoded.scenario, "aging+churn:0.01");
}

struct RunningServer {
  serve::Server server;
  std::thread thread;

  explicit RunningServer(const serve::ServerOptions& options)
      : server(options) {
    thread = std::thread([this] { server.run(); });
  }
  ~RunningServer() {
    server.request_stop();
    thread.join();
  }
  std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(server.port());
  }
};

serve::QueryParams scenario_query() {
  serve::QueryParams query;
  query.req = "certify";
  query.n = 1;
  query.extra = 2;
  query.trials = 24;
  query.seed = 7;
  query.delta = 0.1;
  query.indifference = 0.8;
  query.window = 200'000;
  query.budget = 2'000'000;
  query.scenario = "ring+corrupt:0.0001";
  return query;
}

TEST(ServeWire, MalformedScenarioIsRejectedAtAdmission) {
  serve::ServerOptions options;
  options.port = 0;
  options.workers = 1;
  RunningServer running(options);
  serve::QueryParams query = scenario_query();
  query.scenario = "grid:1";
  std::string response, error;
  ASSERT_TRUE(serve::rpc(running.endpoint(), serve::encode_query(query),
                         &response, &error))
      << error;
  const serve::Json json = serve::Json::parse(response);
  EXPECT_FALSE(json.boolean("ok", true)) << response;
  EXPECT_NE(json.str("error", "").find("grid width"), std::string::npos)
      << response;
}

TEST(ServeWire, ScenarioCertifyDigestIndependentOfWorkerCount) {
  const serve::QueryParams query = scenario_query();
  // In-process reference with identical options.
  const auto lowered =
      compile::lower_program(czerner::build_construction(query.n).program);
  const auto conv = compile::machine_to_protocol(lowered.machine);
  const std::uint64_t m = conv.num_pointers + query.extra;
  const bool expected = bignum::Nat(query.extra) >=
                        czerner::Construction::threshold(query.n);
  smc::CertifyOptions options = serve::certify_options_of(query);
  options.threads = 1;
  const smc::Certificate reference =
      smc::certify(conv.protocol, conv.initial_config(m), expected, options);
  ASSERT_EQ(reference.scenario, "ring+corrupt:0.0001");

  for (const unsigned workers : {1u, 2u}) {
    serve::ServerOptions server_options;
    server_options.port = 0;
    server_options.workers = workers;
    server_options.shard = 4;
    RunningServer running(server_options);
    std::string response, error;
    ASSERT_TRUE(serve::rpc(running.endpoint(), serve::encode_query(query),
                           &response, &error))
        << error;
    const serve::Json json = serve::Json::parse(response);
    EXPECT_TRUE(json.boolean("ok", false)) << response;
    char digest[32];
    std::snprintf(digest, sizeof digest, "%016llx",
                  static_cast<unsigned long long>(
                      smc::certificate_digest(reference)));
    EXPECT_NE(response.find(std::string("\"digest\":\"") + digest + "\""),
              std::string::npos)
        << "workers " << workers << ": " << response;
  }
}

}  // namespace
}  // namespace ppde
