// Tests for the observability subsystem (DESIGN.md S24): trace-file
// schema and lifecycle, ring-overflow drop accounting, multi-threaded
// span recording, the sharded metrics registry, log₂ histogram quantiles,
// the progress heartbeat, and — the load-bearing invariant — that tracing
// never perturbs a certified result: certificate digests are identical
// with tracing on, off, and at every thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "baselines/flock.hpp"
#include "obs/progress.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "smc/certify.hpp"
#include "smc/json.hpp"

namespace ppde::obs {
namespace {

std::string temp_trace_path(const char* tag) {
  return testing::TempDir() + "obs_" + tag + "_" +
         std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
         ".json";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::stringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size()))
    ++count;
  return count;
}

/// RAII cleanup so a failing assertion doesn't leak temp files.
struct FileGuard {
  std::string path;
  ~FileGuard() { std::remove(path.c_str()); }
};

TEST(Tracer, DisabledByDefault) {
  EXPECT_EQ(Tracer::active(), nullptr);
  // Spans and counters must be safe no-ops with no tracer installed.
  {
    ObsSpan span("noop", "test");
    span.set_value(1.0);
    trace_counter("noop.counter", 2.0);
  }
  EXPECT_EQ(Tracer::active(), nullptr);
}

TEST(Tracer, WritesSchemaCompliantTraceFile) {
  const std::string path = temp_trace_path("schema");
  FileGuard guard{path};
  ASSERT_TRUE(Tracer::start(path));
  ASSERT_NE(Tracer::active(), nullptr);
  {
    ObsSpan span("outer", "test");
    span.set_value(3.0);
    { ObsSpan inner("inner", "test"); }
  }
  trace_counter("test.gauge", 42.5);
  Tracer::stop();
  EXPECT_EQ(Tracer::active(), nullptr);

  const std::string text = slurp(path);
  const std::vector<std::string> lines = lines_of(text);
  ASSERT_GE(lines.size(), 6u);  // [ header, 3 events, footer, ]
  // The whole file is one JSON array: every event on its own line with a
  // trailing comma except the footer, so `sed 's/,$//'` yields JSONL and
  // json.load() takes the file as-is.
  EXPECT_EQ(lines.front(), "[");
  EXPECT_EQ(lines.back(), "]");
  for (std::size_t i = 1; i + 2 < lines.size(); ++i)
    EXPECT_EQ(lines[i].back(), ',') << "line " << i << ": " << lines[i];
  EXPECT_NE(lines[1].find("\"obs_trace_v\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"ph\":\"M\""), std::string::npos);

  // Both spans, nested order irrelevant, plus the counter sample.
  EXPECT_EQ(count_occurrences(text, "\"ph\":\"X\""), 2u);
  EXPECT_NE(text.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(text.find("\"args\":{\"n\":3}"), std::string::npos);
  EXPECT_EQ(count_occurrences(text, "\"ph\":\"C\""), 1u);
  EXPECT_NE(text.find("\"name\":\"test.gauge\""), std::string::npos);
  // Footer accounts for every event: 3 written, none dropped.
  EXPECT_NE(text.find("\"name\":\"obs_summary\""), std::string::npos);
  EXPECT_NE(text.find("\"written\":3"), std::string::npos);
  EXPECT_NE(text.find("\"dropped\":0"), std::string::npos);
}

TEST(Tracer, SecondStartWhileActiveFails) {
  const std::string path = temp_trace_path("second");
  FileGuard guard{path};
  ASSERT_TRUE(Tracer::start(path));
  EXPECT_FALSE(Tracer::start(temp_trace_path("second_b")));
  Tracer::stop();
  // stop() is idempotent; a fresh start after stop works.
  Tracer::stop();
  ASSERT_TRUE(Tracer::start(path));
  Tracer::stop();
}

TEST(Tracer, StartFailsOnUnopenablePath) {
  EXPECT_FALSE(Tracer::start("/nonexistent-dir-for-obs-test/trace.json"));
  EXPECT_EQ(Tracer::active(), nullptr);
}

TEST(Tracer, RecordsSpansFromManyThreads) {
  const std::string path = temp_trace_path("threads");
  FileGuard guard{path};
  ASSERT_TRUE(Tracer::start(path));
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i)
        ObsSpan span("worker_span", "test");
    });
  for (std::thread& worker : workers) worker.join();
  Tracer::stop();

  const std::string text = slurp(path);
  EXPECT_EQ(count_occurrences(text, "\"name\":\"worker_span\""),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  // Each thread serialises under its own tid; 4 worker threads on fresh
  // rings means at least 4 distinct tids beyond the metadata's tid 0.
  std::size_t distinct_tids = 0;
  for (int tid = 1; tid <= kThreads + 1; ++tid)
    if (text.find("\"tid\":" + std::to_string(tid)) != std::string::npos)
      ++distinct_tids;
  EXPECT_GE(distinct_tids, static_cast<std::size_t>(kThreads));
}

TEST(Tracer, FullRingDropsAndCountsInsteadOfBlocking) {
  const std::string path = temp_trace_path("drops");
  FileGuard guard{path};
  TracerOptions options;
  options.ring_capacity = 8;  // tiny ring
  options.flush_period_ms = 10'000;  // collector effectively never wakes
  ASSERT_TRUE(Tracer::start(path, options));
  constexpr int kEvents = 1000;
  for (int i = 0; i < kEvents; ++i) ObsSpan span("burst", "test");
  const std::uint64_t dropped = Tracer::active()->dropped();
  EXPECT_GT(dropped, 0u);
  Tracer::stop();

  // written + dropped accounts for every record attempt; the final drain
  // in stop() may rescue up to ring_capacity events beyond the snapshot.
  const std::string text = slurp(path);
  const std::size_t written = count_occurrences(text, "\"name\":\"burst\"");
  EXPECT_LE(written, static_cast<std::size_t>(kEvents));
  EXPECT_NE(text.find("\"dropped\":"), std::string::npos);
  EXPECT_EQ(text.find("\"dropped\":0"), std::string::npos);
}

TEST(Registry, CounterSumsAcrossThreads) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add(1);
    });
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Registry, GaugeKeepsLastWrite) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(3.5);
  gauge.set(-7.25);
  EXPECT_EQ(gauge.value(), -7.25);
  gauge.reset();
  EXPECT_EQ(gauge.value(), 0.0);
}

TEST(Registry, HistogramBucketsByLog2WithUpperEdgeQuantiles) {
  Histogram histogram;
  EXPECT_EQ(histogram.quantile_upper(0.5), 0u);  // empty
  histogram.record(0);
  histogram.record(1);
  histogram.record(2);
  histogram.record(3);   // bucket [2,4)
  histogram.record(100);  // bucket [64,128)
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_EQ(histogram.sum(), 106u);
  EXPECT_EQ(histogram.max(), 100u);
  EXPECT_EQ(histogram.bucket(0), 1u);  // the 0
  EXPECT_EQ(histogram.bucket(1), 1u);  // the 1
  EXPECT_EQ(histogram.bucket(2), 2u);  // 2 and 3
  EXPECT_EQ(histogram.bucket(7), 1u);  // 100
  // Median lands in bucket [2,4): upper edge 4. p99 is the top sample's
  // bucket: upper edge 128. Factor-of-2 precision by construction.
  EXPECT_EQ(histogram.quantile_upper(0.5), 4u);
  EXPECT_EQ(histogram.quantile_upper(0.99), 128u);
  histogram.reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.max(), 0u);
}

TEST(Registry, FindOrCreateIsStableAndKindChecked) {
  Registry& registry = Registry::global();
  Counter& a = registry.counter("test_obs.stable");
  Counter& b = registry.counter("test_obs.stable");
  EXPECT_EQ(&a, &b);
  EXPECT_THROW(registry.gauge("test_obs.stable"), std::logic_error);
  EXPECT_THROW(registry.histogram("test_obs.stable"), std::logic_error);
}

TEST(Registry, SnapshotReportsSortedNamesAndValues) {
  Registry& registry = Registry::global();
  registry.counter("test_obs.snap_c").add(3);
  registry.gauge("test_obs.snap_g").set(2.5);
  registry.histogram("test_obs.snap_h").record(9);
  const std::vector<MetricSnapshot> snapshot = registry.snapshot();
  ASSERT_GE(snapshot.size(), 3u);
  for (std::size_t i = 1; i < snapshot.size(); ++i)
    EXPECT_LT(snapshot[i - 1].name, snapshot[i].name);
  bool saw_counter = false, saw_gauge = false, saw_histogram = false;
  for (const MetricSnapshot& metric : snapshot) {
    if (metric.name == "test_obs.snap_c") {
      saw_counter = true;
      EXPECT_EQ(metric.kind, MetricKind::kCounter);
      EXPECT_GE(metric.value, 3.0);
    } else if (metric.name == "test_obs.snap_g") {
      saw_gauge = true;
      EXPECT_EQ(metric.kind, MetricKind::kGauge);
      EXPECT_EQ(metric.value, 2.5);
    } else if (metric.name == "test_obs.snap_h") {
      saw_histogram = true;
      EXPECT_EQ(metric.kind, MetricKind::kHistogram);
      EXPECT_GE(metric.count, 1u);
      EXPECT_EQ(metric.p50, 16u);  // 9 lands in [8,16)
    }
  }
  EXPECT_TRUE(saw_counter && saw_gauge && saw_histogram);
  EXPECT_NE(registry.to_string().find("test_obs.snap_g"), std::string::npos);
}

TEST(Progress, MonitorTicksAndPrintsViaCallback) {
  std::atomic<int> calls{0};
  {
    ProgressMonitor monitor(0.02, [&calls]() -> std::string {
      const int call = calls.fetch_add(1) + 1;
      // Alternate empty lines to exercise the skip path.
      return call % 2 == 0 ? std::string()
                           : "[test_obs] heartbeat " + std::to_string(call);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    monitor.stop();
    EXPECT_GE(monitor.ticks(), 2u);
    EXPECT_GE(calls.load(), 2);
    const int after_stop = calls.load();
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    EXPECT_EQ(calls.load(), after_stop);  // stop() really stopped it
    monitor.stop();  // idempotent
  }
}

TEST(Progress, DestructorStopsWithoutExplicitStop) {
  std::atomic<int> calls{0};
  {
    ProgressMonitor monitor(0.01, [&calls]() -> std::string {
      calls.fetch_add(1);
      return std::string();
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const int after = calls.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_EQ(calls.load(), after);
}

// The invariant the whole subsystem hangs off: observation never perturbs
// a certified result. Same digest with tracing off, on, and across thread
// counts (instrumented span + gauge paths all active during certify).
TEST(Observability, CertifyDigestUnchangedByTracingAndThreads) {
  const pp::Protocol flock = baselines::make_flock_of_birds(4);
  const pp::Config initial = baselines::flock_initial(flock, 6);
  smc::CertifyOptions options;
  options.delta = 0.1;
  options.indifference = 0.8;
  options.alpha = options.beta = 0.01;
  options.max_trials = 64;
  options.batch = 8;
  options.threads = 1;
  options.seed = 11;
  options.sim.stable_window = 20'000;
  options.sim.max_interactions = 50'000'000;
  options.engine = engine::EngineKind::kPerAgent;

  const smc::Certificate plain = smc::certify(flock, initial, true, options);
  const std::uint64_t baseline = smc::certificate_digest(plain);

  const std::string path = temp_trace_path("digest");
  FileGuard guard{path};
  ASSERT_TRUE(Tracer::start(path));
  const smc::Certificate traced_1 = smc::certify(flock, initial, true, options);
  options.threads = 4;
  const smc::Certificate traced_4 = smc::certify(flock, initial, true, options);
  Tracer::stop();

  EXPECT_EQ(smc::certificate_digest(traced_1), baseline);
  EXPECT_EQ(smc::certificate_digest(traced_4), baseline);
  EXPECT_EQ(smc::to_jsonl(traced_1).substr(0, smc::to_jsonl(traced_1).find(
                                                   "\"digest\"")),
            smc::to_jsonl(plain).substr(0, smc::to_jsonl(plain).find(
                                              "\"digest\"")));

  // The traced runs actually traced: per-round spans are in the file.
  const std::string text = slurp(path);
  EXPECT_NE(text.find("\"name\":\"certify_trials\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"sprt_round\""), std::string::npos);
}

}  // namespace
}  // namespace ppde::obs
