// Tests for the observability subsystem (DESIGN.md S24): trace-file
// schema and lifecycle, ring-overflow drop accounting, multi-threaded
// span recording, the sharded metrics registry, log₂ histogram quantiles,
// the progress heartbeat, and — the load-bearing invariant — that tracing
// never perturbs a certified result: certificate digests are identical
// with tracing on, off, and at every thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "baselines/flock.hpp"
#include "obs/flight.hpp"
#include "obs/progress.hpp"
#include "obs/prom_http.hpp"
#include "obs/registry.hpp"
#include "obs/rollup.hpp"
#include "obs/trace.hpp"
#include "smc/certify.hpp"
#include "smc/json.hpp"

namespace ppde::obs {
namespace {

std::string temp_trace_path(const char* tag) {
  return testing::TempDir() + "obs_" + tag + "_" +
         std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
         ".json";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::stringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size()))
    ++count;
  return count;
}

/// RAII cleanup so a failing assertion doesn't leak temp files.
struct FileGuard {
  std::string path;
  ~FileGuard() { std::remove(path.c_str()); }
};

TEST(Tracer, DisabledByDefault) {
  EXPECT_EQ(Tracer::active(), nullptr);
  // Spans and counters must be safe no-ops with no tracer installed.
  {
    ObsSpan span("noop", "test");
    span.set_value(1.0);
    trace_counter("noop.counter", 2.0);
  }
  EXPECT_EQ(Tracer::active(), nullptr);
}

TEST(Tracer, WritesSchemaCompliantTraceFile) {
  const std::string path = temp_trace_path("schema");
  FileGuard guard{path};
  ASSERT_TRUE(Tracer::start(path));
  ASSERT_NE(Tracer::active(), nullptr);
  {
    ObsSpan span("outer", "test");
    span.set_value(3.0);
    { ObsSpan inner("inner", "test"); }
  }
  trace_counter("test.gauge", 42.5);
  Tracer::stop();
  EXPECT_EQ(Tracer::active(), nullptr);

  const std::string text = slurp(path);
  const std::vector<std::string> lines = lines_of(text);
  ASSERT_GE(lines.size(), 6u);  // [ header, 3 events, footer, ]
  // The whole file is one JSON array: every event on its own line with a
  // trailing comma except the footer, so `sed 's/,$//'` yields JSONL and
  // json.load() takes the file as-is.
  EXPECT_EQ(lines.front(), "[");
  EXPECT_EQ(lines.back(), "]");
  for (std::size_t i = 1; i + 2 < lines.size(); ++i)
    EXPECT_EQ(lines[i].back(), ',') << "line " << i << ": " << lines[i];
  EXPECT_NE(lines[1].find("\"obs_trace_v\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"ph\":\"M\""), std::string::npos);

  // Both spans, nested order irrelevant, plus the counter sample.
  EXPECT_EQ(count_occurrences(text, "\"ph\":\"X\""), 2u);
  EXPECT_NE(text.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(text.find("\"args\":{\"n\":3}"), std::string::npos);
  EXPECT_EQ(count_occurrences(text, "\"ph\":\"C\""), 1u);
  EXPECT_NE(text.find("\"name\":\"test.gauge\""), std::string::npos);
  // Footer accounts for every event: 3 written, none dropped.
  EXPECT_NE(text.find("\"name\":\"obs_summary\""), std::string::npos);
  EXPECT_NE(text.find("\"written\":3"), std::string::npos);
  EXPECT_NE(text.find("\"dropped\":0"), std::string::npos);
}

TEST(Tracer, SecondStartWhileActiveFails) {
  const std::string path = temp_trace_path("second");
  FileGuard guard{path};
  ASSERT_TRUE(Tracer::start(path));
  EXPECT_FALSE(Tracer::start(temp_trace_path("second_b")));
  Tracer::stop();
  // stop() is idempotent; a fresh start after stop works.
  Tracer::stop();
  ASSERT_TRUE(Tracer::start(path));
  Tracer::stop();
}

TEST(Tracer, StartFailsOnUnopenablePath) {
  EXPECT_FALSE(Tracer::start("/nonexistent-dir-for-obs-test/trace.json"));
  EXPECT_EQ(Tracer::active(), nullptr);
}

TEST(Tracer, RecordsSpansFromManyThreads) {
  const std::string path = temp_trace_path("threads");
  FileGuard guard{path};
  ASSERT_TRUE(Tracer::start(path));
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i)
        ObsSpan span("worker_span", "test");
    });
  for (std::thread& worker : workers) worker.join();
  Tracer::stop();

  const std::string text = slurp(path);
  EXPECT_EQ(count_occurrences(text, "\"name\":\"worker_span\""),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  // Each thread serialises under its own tid; 4 worker threads on fresh
  // rings means at least 4 distinct tids beyond the metadata's tid 0.
  std::size_t distinct_tids = 0;
  for (int tid = 1; tid <= kThreads + 1; ++tid)
    if (text.find("\"tid\":" + std::to_string(tid)) != std::string::npos)
      ++distinct_tids;
  EXPECT_GE(distinct_tids, static_cast<std::size_t>(kThreads));
}

TEST(Tracer, FullRingDropsAndCountsInsteadOfBlocking) {
  const std::string path = temp_trace_path("drops");
  FileGuard guard{path};
  TracerOptions options;
  options.ring_capacity = 8;  // tiny ring
  options.flush_period_ms = 10'000;  // collector effectively never wakes
  ASSERT_TRUE(Tracer::start(path, options));
  constexpr int kEvents = 1000;
  for (int i = 0; i < kEvents; ++i) ObsSpan span("burst", "test");
  const std::uint64_t dropped = Tracer::active()->dropped();
  EXPECT_GT(dropped, 0u);
  Tracer::stop();

  // written + dropped accounts for every record attempt; the final drain
  // in stop() may rescue up to ring_capacity events beyond the snapshot.
  const std::string text = slurp(path);
  const std::size_t written = count_occurrences(text, "\"name\":\"burst\"");
  EXPECT_LE(written, static_cast<std::size_t>(kEvents));
  EXPECT_NE(text.find("\"dropped\":"), std::string::npos);
  EXPECT_EQ(text.find("\"dropped\":0"), std::string::npos);
}

TEST(Registry, CounterSumsAcrossThreads) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add(1);
    });
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Registry, GaugeKeepsLastWrite) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(3.5);
  gauge.set(-7.25);
  EXPECT_EQ(gauge.value(), -7.25);
  gauge.reset();
  EXPECT_EQ(gauge.value(), 0.0);
}

TEST(Registry, HistogramBucketsByLog2WithUpperEdgeQuantiles) {
  Histogram histogram;
  EXPECT_EQ(histogram.quantile_upper(0.5), 0u);  // empty
  histogram.record(0);
  histogram.record(1);
  histogram.record(2);
  histogram.record(3);   // bucket [2,4)
  histogram.record(100);  // bucket [64,128)
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_EQ(histogram.sum(), 106u);
  EXPECT_EQ(histogram.max(), 100u);
  EXPECT_EQ(histogram.bucket(0), 1u);  // the 0
  EXPECT_EQ(histogram.bucket(1), 1u);  // the 1
  EXPECT_EQ(histogram.bucket(2), 2u);  // 2 and 3
  EXPECT_EQ(histogram.bucket(7), 1u);  // 100
  // Median lands in bucket [2,4): upper edge 4. p99 is the top sample's
  // bucket: upper edge 128. Factor-of-2 precision by construction.
  EXPECT_EQ(histogram.quantile_upper(0.5), 4u);
  EXPECT_EQ(histogram.quantile_upper(0.99), 128u);
  histogram.reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.max(), 0u);
}

TEST(Registry, FindOrCreateIsStableAndKindChecked) {
  Registry& registry = Registry::global();
  Counter& a = registry.counter("test_obs.stable");
  Counter& b = registry.counter("test_obs.stable");
  EXPECT_EQ(&a, &b);
  EXPECT_THROW(registry.gauge("test_obs.stable"), std::logic_error);
  EXPECT_THROW(registry.histogram("test_obs.stable"), std::logic_error);
}

TEST(Registry, SnapshotReportsSortedNamesAndValues) {
  Registry& registry = Registry::global();
  registry.counter("test_obs.snap_c").add(3);
  registry.gauge("test_obs.snap_g").set(2.5);
  registry.histogram("test_obs.snap_h").record(9);
  const std::vector<MetricSnapshot> snapshot = registry.snapshot();
  ASSERT_GE(snapshot.size(), 3u);
  for (std::size_t i = 1; i < snapshot.size(); ++i)
    EXPECT_LT(snapshot[i - 1].name, snapshot[i].name);
  bool saw_counter = false, saw_gauge = false, saw_histogram = false;
  for (const MetricSnapshot& metric : snapshot) {
    if (metric.name == "test_obs.snap_c") {
      saw_counter = true;
      EXPECT_EQ(metric.kind, MetricKind::kCounter);
      EXPECT_GE(metric.value, 3.0);
    } else if (metric.name == "test_obs.snap_g") {
      saw_gauge = true;
      EXPECT_EQ(metric.kind, MetricKind::kGauge);
      EXPECT_EQ(metric.value, 2.5);
    } else if (metric.name == "test_obs.snap_h") {
      saw_histogram = true;
      EXPECT_EQ(metric.kind, MetricKind::kHistogram);
      EXPECT_GE(metric.count, 1u);
      EXPECT_EQ(metric.p50, 16u);  // 9 lands in [8,16)
    }
  }
  EXPECT_TRUE(saw_counter && saw_gauge && saw_histogram);
  EXPECT_NE(registry.to_string().find("test_obs.snap_g"), std::string::npos);
}

TEST(Progress, MonitorTicksAndPrintsViaCallback) {
  std::atomic<int> calls{0};
  {
    ProgressMonitor monitor(0.02, [&calls]() -> std::string {
      const int call = calls.fetch_add(1) + 1;
      // Alternate empty lines to exercise the skip path.
      return call % 2 == 0 ? std::string()
                           : "[test_obs] heartbeat " + std::to_string(call);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    monitor.stop();
    EXPECT_GE(monitor.ticks(), 2u);
    EXPECT_GE(calls.load(), 2);
    const int after_stop = calls.load();
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    EXPECT_EQ(calls.load(), after_stop);  // stop() really stopped it
    monitor.stop();  // idempotent
  }
}

TEST(Progress, DestructorStopsWithoutExplicitStop) {
  std::atomic<int> calls{0};
  {
    ProgressMonitor monitor(0.01, [&calls]() -> std::string {
      calls.fetch_add(1);
      return std::string();
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const int after = calls.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_EQ(calls.load(), after);
}

// The invariant the whole subsystem hangs off: observation never perturbs
// a certified result. Same digest with tracing off, on, and across thread
// counts (instrumented span + gauge paths all active during certify).
TEST(Observability, CertifyDigestUnchangedByTracingAndThreads) {
  const pp::Protocol flock = baselines::make_flock_of_birds(4);
  const pp::Config initial = baselines::flock_initial(flock, 6);
  smc::CertifyOptions options;
  options.delta = 0.1;
  options.indifference = 0.8;
  options.alpha = options.beta = 0.01;
  options.max_trials = 64;
  options.batch = 8;
  options.threads = 1;
  options.seed = 11;
  options.sim.stable_window = 20'000;
  options.sim.max_interactions = 50'000'000;
  options.engine = engine::EngineKind::kPerAgent;

  const smc::Certificate plain = smc::certify(flock, initial, true, options);
  const std::uint64_t baseline = smc::certificate_digest(plain);

  const std::string path = temp_trace_path("digest");
  FileGuard guard{path};
  ASSERT_TRUE(Tracer::start(path));
  const smc::Certificate traced_1 = smc::certify(flock, initial, true, options);
  options.threads = 4;
  const smc::Certificate traced_4 = smc::certify(flock, initial, true, options);
  Tracer::stop();

  EXPECT_EQ(smc::certificate_digest(traced_1), baseline);
  EXPECT_EQ(smc::certificate_digest(traced_4), baseline);
  EXPECT_EQ(smc::to_jsonl(traced_1).substr(0, smc::to_jsonl(traced_1).find(
                                                   "\"digest\"")),
            smc::to_jsonl(plain).substr(0, smc::to_jsonl(plain).find(
                                              "\"digest\"")));

  // The traced runs actually traced: per-round spans are in the file.
  const std::string text = slurp(path);
  EXPECT_NE(text.find("\"name\":\"certify_trials\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"sprt_round\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fleet roll-up (S29): delta snapshots, bucket-merge, exposition.

MetricSnapshot find_metric(const std::vector<MetricSnapshot>& all,
                           std::string_view name) {
  for (const MetricSnapshot& metric : all)
    if (metric.name == name) return metric;
  ADD_FAILURE() << "metric '" << name << "' not found";
  return {};
}

// The roll-up's core claim: folding snapshots bucket-by-bucket is exactly
// replaying their raw samples — both land each sample in the same log₂
// bucket, so count/sum/max/quantiles agree metric for metric.
TEST(Rollup, HistogramBucketMergeEqualsReplay) {
  Registry& registry = Registry::global();
  Histogram& replay = registry.histogram("test_obs.merge_replay");
  Histogram& merged = registry.histogram("test_obs.merge_target");
  Histogram& src_a = registry.histogram("test_obs.merge_src_a");
  Histogram& src_b = registry.histogram("test_obs.merge_src_b");
  const std::uint64_t samples_a[] = {0, 1, 2, 3, 100, 1u << 20};
  const std::uint64_t samples_b[] = {7, 8, 9, 1024, std::uint64_t{1} << 40};
  for (const std::uint64_t sample : samples_a) {
    replay.record(sample);
    src_a.record(sample);
  }
  for (const std::uint64_t sample : samples_b) {
    replay.record(sample);
    src_b.record(sample);
  }

  const std::vector<MetricSnapshot> snapshot = registry.snapshot();
  merged.merge_from(find_metric(snapshot, "test_obs.merge_src_a"));
  merged.merge_from(find_metric(snapshot, "test_obs.merge_src_b"));

  EXPECT_EQ(merged.count(), replay.count());
  EXPECT_EQ(merged.sum(), replay.sum());
  EXPECT_EQ(merged.max(), replay.max());
  for (unsigned b = 0; b < Histogram::kBuckets; ++b)
    EXPECT_EQ(merged.bucket(b), replay.bucket(b)) << "bucket " << b;
  EXPECT_EQ(merged.quantile_upper(0.5), replay.quantile_upper(0.5));
  EXPECT_EQ(merged.quantile_upper(0.99), replay.quantile_upper(0.99));
}

// Workers ship *deltas*, not cumulative snapshots: each increment crosses
// the wire exactly once, and a collect() with nothing new ships nothing —
// so a duplicate snapshot round is the identity on the daemon side.
TEST(Rollup, DeltaTrackerShipsEachIncrementExactlyOnce) {
  Registry& registry = Registry::global();
  Counter& counter = registry.counter("test_obs.delta_c");
  Histogram& histogram = registry.histogram("test_obs.delta_h");
  counter.add(5);       // pre-baseline: must never ship
  histogram.record(9);  // pre-baseline
  DeltaTracker tracker;

  for (const MetricSnapshot& metric : tracker.collect()) {
    EXPECT_NE(metric.name, "test_obs.delta_c");
    EXPECT_NE(metric.name, "test_obs.delta_h");
  }

  counter.add(3);
  histogram.record(20);
  histogram.record(33);
  const std::vector<MetricSnapshot> delta = tracker.collect();
  const MetricSnapshot counter_delta = find_metric(delta, "test_obs.delta_c");
  EXPECT_EQ(counter_delta.kind, MetricKind::kCounter);
  EXPECT_EQ(counter_delta.value, 3.0);  // the increment, not the total 8
  const MetricSnapshot histogram_delta =
      find_metric(delta, "test_obs.delta_h");
  EXPECT_EQ(histogram_delta.count, 2u);  // not the pre-baseline 9
  EXPECT_EQ(histogram_delta.sum, 53u);
  ASSERT_EQ(histogram_delta.buckets.size(),
            static_cast<std::size_t>(Histogram::kBuckets));
  EXPECT_EQ(histogram_delta.buckets[5], 1u);  // 20 in [16,32)
  EXPECT_EQ(histogram_delta.buckets[6], 1u);  // 33 in [32,64)
  EXPECT_EQ(histogram_delta.buckets[4], 0u);  // the baseline 9 is absent

  for (const MetricSnapshot& metric : tracker.collect()) {
    EXPECT_NE(metric.name, "test_obs.delta_c");
    EXPECT_NE(metric.name, "test_obs.delta_h");
  }
}

// Deltas make the daemon-side fold commutative and associative: any
// shuffle, any batching of the same deltas sums to the same fleet totals.
TEST(Rollup, MergeDeltasIsShuffleAndBatchingInsensitive) {
  MetricSnapshot counter_a;
  counter_a.name = "assoc_c";
  counter_a.kind = MetricKind::kCounter;
  counter_a.value = 5.0;
  MetricSnapshot counter_b = counter_a;
  counter_b.value = 7.0;
  MetricSnapshot histogram_a;
  histogram_a.name = "assoc_h";
  histogram_a.kind = MetricKind::kHistogram;
  histogram_a.count = 2;
  histogram_a.sum = 3;
  histogram_a.max = 2;
  histogram_a.buckets.assign(Histogram::kBuckets, 0);
  histogram_a.buckets[1] = 1;
  histogram_a.buckets[2] = 1;
  MetricSnapshot histogram_b;
  histogram_b.name = "assoc_h";
  histogram_b.kind = MetricKind::kHistogram;
  histogram_b.count = 1;
  histogram_b.sum = 100;
  histogram_b.max = 100;
  histogram_b.buckets.assign(Histogram::kBuckets, 0);
  histogram_b.buckets[7] = 1;

  // One batch in one order vs. three batches in another order.
  merge_deltas("test_obs.ord1.", {counter_a, histogram_a, counter_b,
                                  histogram_b});
  merge_deltas("test_obs.ord2.", {counter_b});
  merge_deltas("test_obs.ord2.", {histogram_b, histogram_a});
  merge_deltas("test_obs.ord2.", {counter_a});

  Registry& registry = Registry::global();
  EXPECT_EQ(registry.counter("test_obs.ord1.assoc_c").value(), 12u);
  EXPECT_EQ(registry.counter("test_obs.ord2.assoc_c").value(), 12u);
  Histogram& merged_1 = registry.histogram("test_obs.ord1.assoc_h");
  Histogram& merged_2 = registry.histogram("test_obs.ord2.assoc_h");
  EXPECT_EQ(merged_1.count(), 3u);
  EXPECT_EQ(merged_1.count(), merged_2.count());
  EXPECT_EQ(merged_1.sum(), merged_2.sum());
  EXPECT_EQ(merged_1.max(), merged_2.max());
  for (unsigned b = 0; b < Histogram::kBuckets; ++b)
    EXPECT_EQ(merged_1.bucket(b), merged_2.bucket(b)) << "bucket " << b;
}

TEST(Registry, PrometheusExpositionIsWellFormed) {
  Registry& registry = Registry::global();
  registry.counter("test_obs.prom_c").add(7);
  registry.gauge("test_obs.prom-g").set(1.5);  // '-' must sanitise to '_'
  Histogram& histogram = registry.histogram("test_obs.prom_h");
  histogram.record(0);
  histogram.record(3);
  histogram.record(1024);
  const std::string text = registry.to_prometheus();

  EXPECT_NE(text.find("# TYPE ppde_test_obs_prom_c counter"),
            std::string::npos);
  EXPECT_NE(text.find("ppde_test_obs_prom_c 7"), std::string::npos);
  EXPECT_NE(text.find("ppde_test_obs_prom_g 1.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ppde_test_obs_prom_h histogram"),
            std::string::npos);
  // Cumulative buckets: the 0 at le="1", +3 at le="4", +1024 at le="2048";
  // the terminal +Inf equals _count and _sum is exact.
  EXPECT_NE(text.find("ppde_test_obs_prom_h_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("ppde_test_obs_prom_h_bucket{le=\"4\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("ppde_test_obs_prom_h_bucket{le=\"2048\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("ppde_test_obs_prom_h_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("ppde_test_obs_prom_h_sum 1027"), std::string::npos);
  EXPECT_NE(text.find("ppde_test_obs_prom_h_count 3"), std::string::npos);

  // Global exposition-format invariants over every line: names use the
  // Prometheus charset only, bucket series are monotone, and every
  // histogram closes with a +Inf bucket.
  std::stringstream stream(text);
  std::string line;
  std::uint64_t last_bucket = 0;
  bool in_buckets = false;
  while (std::getline(stream, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') continue;
    const std::size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos) << line;
    for (char c : line.substr(0, name_end))
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':')
          << "bad metric-name character '" << c << "' in: " << line;
    const bool is_bucket = line.find("_bucket{le=\"") != std::string::npos;
    if (is_bucket) {
      const std::uint64_t value =
          std::strtoull(line.substr(line.rfind(' ') + 1).c_str(), nullptr, 10);
      if (in_buckets) {
        EXPECT_GE(value, last_bucket) << line;
      }
      last_bucket = value;
      in_buckets = line.find("le=\"+Inf\"") == std::string::npos;
    } else {
      EXPECT_FALSE(in_buckets) << "bucket series not closed by +Inf: " << line;
    }
  }
  EXPECT_FALSE(in_buckets);
}

// ---------------------------------------------------------------------------
// Capture mode + stitching (S29): the worker half and the daemon half of
// distributed tracing.

TEST(Tracer, CaptureModeDrainsOwnedAbsoluteEvents) {
  ASSERT_TRUE(Tracer::start_capture());
  ASSERT_TRUE(Tracer::capturing());
  const std::uint64_t epoch = Tracer::active()->epoch_ns();
  {
    ObsSpan span("cap_span", "test");
    span.set_value(9.0);
  }
  trace_counter("cap_counter", 1.5);

  const std::vector<CapturedEvent> events = Tracer::drain_capture();
  ASSERT_EQ(events.size(), 2u);
  bool saw_span = false, saw_counter = false;
  for (const CapturedEvent& event : events) {
    EXPECT_GE(event.ts_ns, epoch);  // absolute steady-clock timebase
    if (event.name == "cap_span") {
      saw_span = true;
      EXPECT_EQ(event.kind, TraceEvent::Kind::kComplete);
      EXPECT_TRUE(event.has_value);
      EXPECT_EQ(event.value, 9.0);
    } else if (event.name == "cap_counter") {
      saw_counter = true;
      EXPECT_EQ(event.kind, TraceEvent::Kind::kCounter);
      EXPECT_EQ(event.value, 1.5);
    }
  }
  EXPECT_TRUE(saw_span && saw_counter);
  EXPECT_TRUE(Tracer::drain_capture().empty());  // drained means drained

  Tracer::stop();
  EXPECT_EQ(Tracer::active(), nullptr);
  EXPECT_FALSE(Tracer::capturing());
}

TEST(Tracer, EmitForeignStitchesDistinctTrackGroups) {
  const std::string path = temp_trace_path("stitch");
  FileGuard guard{path};
  ASSERT_TRUE(Tracer::start(path));
  Tracer* tracer = Tracer::active();
  CapturedEvent event;
  event.name = "w_span";
  event.cat = "test";
  event.kind = TraceEvent::Kind::kComplete;
  event.ts_ns = tracer->epoch_ns() + 1'000;
  event.dur_ns = 500;
  event.tid = 1;
  tracer->emit_foreign(4242, "ppde worker 4242", event);
  tracer->emit_foreign(4242, "ppde worker 4242", event);  // announce deduped
  tracer->announce_process(4343, "ppde worker 4343");     // no events at all
  Tracer::stop();

  const std::string text = slurp(path);
  EXPECT_EQ(count_occurrences(text, "\"ppde worker 4242\""), 1u);
  EXPECT_EQ(count_occurrences(text, "\"ppde worker 4343\""), 1u);
  EXPECT_EQ(count_occurrences(text, "\"name\":\"w_span\""), 2u);
  // Both stitched events carry the foreign pid (plus its metadata record).
  EXPECT_EQ(count_occurrences(text, "\"pid\":4242"), 3u);
  EXPECT_EQ(count_occurrences(text, "\"pid\":4343"), 1u);
  // Still one valid JSON array with the footer.
  const std::vector<std::string> lines = lines_of(text);
  EXPECT_EQ(lines.front(), "[");
  EXPECT_EQ(lines.back(), "]");
  EXPECT_NE(text.find("\"name\":\"obs_summary\""), std::string::npos);
}

TEST(Tracer, MaxFileBytesCapTruncatesButFileStaysValid) {
  Registry& registry = Registry::global();
  const std::uint64_t truncated_before =
      registry.counter("obs.trace_truncated").value();
  const std::string path = temp_trace_path("cap");
  FileGuard guard{path};
  TracerOptions options;
  options.max_file_bytes = 600;
  options.flush_period_ms = 1;
  ASSERT_TRUE(Tracer::start(path, options));
  for (int i = 0; i < 200; ++i) ObsSpan span("cap_burst", "test");
  Tracer::stop();

  const std::string text = slurp(path);
  const std::vector<std::string> lines = lines_of(text);
  EXPECT_EQ(lines.front(), "[");
  EXPECT_EQ(lines.back(), "]");  // capped, but still one valid JSON array
  EXPECT_LT(text.size(), 2'000u);  // ~20 KB of spans were suppressed
  EXPECT_NE(text.find("\"truncated\":"), std::string::npos);
  EXPECT_EQ(text.find("\"truncated\":0"), std::string::npos);
  EXPECT_GT(registry.counter("obs.trace_truncated").value(),
            truncated_before);
}

TEST(PromHttp, ServesMetricsOverHttpGet) {
  Registry::global().counter("test_obs.http_c").add(1);
  PromHttpServer server(0);  // ephemeral port
  server.start();
  ASSERT_NE(server.port(), 0);

  const auto fetch = [&](const std::string& request_line) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server.port());
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    const std::string request = request_line + "\r\nHost: localhost\r\n\r\n";
    EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    std::string response;
    char buffer[4096];
    ssize_t got;
    while ((got = ::recv(fd, buffer, sizeof buffer, 0)) > 0)
      response.append(buffer, static_cast<std::size_t>(got));
    ::close(fd);
    return response;
  };

  const std::string metrics = fetch("GET /metrics HTTP/1.1");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("ppde_test_obs_http_c"), std::string::npos);
  EXPECT_NE(fetch("GET /other HTTP/1.1").find("404"), std::string::npos);
  server.stop();
}

TEST(Flight, RecorderIsBoundedNewestFirstAndSerialises) {
  FlightRecorder recorder(2);
  QueryFlight first;
  first.seq = 1;
  first.req = "certify";
  first.outcome = "ok";
  first.verdict = "CERTIFIED";
  first.digest = "00ff";
  first.workers.push_back(WorkerLatency{0, 2, 30, 20});
  recorder.add(first);
  QueryFlight second;
  second.seq = 2;
  second.req = "ensemble";
  second.outcome = "ok";
  recorder.add(second);
  QueryFlight third;
  third.seq = 3;
  third.req = "certify";
  third.outcome = "rejected";
  third.detail = "queue full";
  recorder.add(third);

  const std::vector<QueryFlight> recent = recorder.recent(10);
  ASSERT_EQ(recent.size(), 2u);  // capacity 2 evicted seq 1
  EXPECT_EQ(recent[0].seq, 3u);  // newest first
  EXPECT_EQ(recent[1].seq, 2u);

  const std::string json = FlightRecorder::to_json(first);
  EXPECT_NE(json.find("\"seq\":1"), std::string::npos);
  EXPECT_NE(json.find("\"verdict\":\"CERTIFIED\""), std::string::npos);
  EXPECT_NE(json.find("\"digest\":\"00ff\""), std::string::npos);
  EXPECT_EQ(json.find("\"detail\""), std::string::npos);  // empty: omitted
  EXPECT_NE(json.find("\"workers\":[{\"worker\":0,\"batches\":2,"
                      "\"total_micros\":30,\"max_micros\":20}]"),
            std::string::npos);
  const std::string rejected = FlightRecorder::to_json(third);
  EXPECT_NE(rejected.find("\"outcome\":\"rejected\""), std::string::npos);
  EXPECT_NE(rejected.find("\"detail\":\"queue full\""), std::string::npos);
}

}  // namespace
}  // namespace ppde::obs
