// Tests for the ensemble simulation engine (DESIGN.md S21):
// distributional equivalence of CountSimulator against the per-agent
// pp::Simulator, exact count conservation, thread-count-independent
// determinism of ensemble statistics, and the consensus_since sentinel.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "baselines/flock.hpp"
#include "baselines/majority.hpp"
#include "compile/lower.hpp"
#include "compile/to_protocol.hpp"
#include "czerner/construction.hpp"
#include "engine/count_sim.hpp"
#include "engine/ensemble.hpp"
#include "pp/simulator.hpp"

namespace ppde::engine {
namespace {

// Two-opinion "initiator wins" protocol: (T,F -> T,T), (F,T -> F,F).
// From a mixed start the absorbing opinion is genuinely random, which makes
// it the right workload for comparing acceptance *distributions*.
pp::Protocol make_opinion_protocol() {
  pp::Protocol protocol;
  const pp::State t = protocol.add_state("T");
  const pp::State f = protocol.add_state("F");
  protocol.mark_input(t);
  protocol.mark_input(f);
  protocol.mark_accepting(t);
  protocol.add_transition(t, f, t, t);
  protocol.add_transition(f, t, f, f);
  protocol.finalize();
  return protocol;
}

pp::Config opinion_initial(const pp::Protocol& protocol, std::uint32_t t,
                           std::uint32_t f) {
  pp::Config config(protocol.num_states());
  config.add(protocol.state("T"), t);
  config.add(protocol.state("F"), f);
  return config;
}

struct SampleStats {
  std::uint64_t accepted = 0;
  std::uint64_t stabilised = 0;
  std::vector<double> interactions;
};

template <typename MakeSim>
SampleStats sample_runs(std::uint64_t trials, std::uint64_t seed_stream,
                        const pp::SimulationOptions& options,
                        MakeSim make_sim) {
  SampleStats stats;
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    auto sim = make_sim(derive_trial_seed(seed_stream, trial));
    const pp::SimulationResult result = sim.run_until_stable(options);
    if (result.stabilised) {
      ++stats.stabilised;
      if (result.output) ++stats.accepted;
    }
    stats.interactions.push_back(static_cast<double>(result.interactions));
  }
  return stats;
}

// Two-sample chi-squared statistic over quantile bins of the combined
// sample (equal sample sizes). Heavily tied samples collapse bins; the
// statistic stays valid because both samples share the tie structure.
double chi_squared(const std::vector<double>& a,
                   const std::vector<double>& b) {
  std::vector<double> combined = a;
  combined.insert(combined.end(), b.begin(), b.end());
  std::sort(combined.begin(), combined.end());
  std::vector<double> edges;
  for (int i = 1; i <= 5; ++i) {
    const double edge = combined[combined.size() * i / 6];
    if (edges.empty() || edge > edges.back()) edges.push_back(edge);
  }
  const auto histogram = [&](const std::vector<double>& values) {
    std::vector<double> bins(edges.size() + 1, 0.0);
    for (double v : values)
      bins[std::upper_bound(edges.begin(), edges.end(), v) - edges.begin()] +=
          1.0;
    return bins;
  };
  const std::vector<double> bins_a = histogram(a);
  const std::vector<double> bins_b = histogram(b);
  double statistic = 0.0;
  for (std::size_t i = 0; i < bins_a.size(); ++i) {
    const double total = bins_a[i] + bins_b[i];
    if (total == 0.0) continue;
    const double diff = bins_a[i] - bins_b[i];
    statistic += diff * diff / total;
  }
  return statistic;
}

TEST(PairIndex, MarksExactlyTheNonSilentPairs) {
  const pp::Protocol majority = baselines::make_majority();
  const PairIndex index(majority);
  const pp::State big_a = majority.state("A");
  const pp::State big_b = majority.state("B");
  const pp::State small_a = majority.state("a");
  const pp::State small_b = majority.state("b");
  EXPECT_EQ(index.num_active_pairs(), 4u);
  EXPECT_EQ(index.partners_of(big_a).size(), 2u);  // B and b
  EXPECT_EQ(index.partners_of(big_b).size(), 1u);  // a
  EXPECT_EQ(index.partners_of(small_a).size(), 1u);  // b
  EXPECT_EQ(index.partners_of(small_b).size(), 0u);
  EXPECT_EQ(index.initiators_meeting(small_b).size(), 2u);  // A and a
  for (pp::State q : {big_a, big_b, small_a, small_b})
    EXPECT_FALSE(index.self_active(q));
}

TEST(PairIndex, AllSilentPairsAreNull) {
  pp::Protocol protocol;
  const pp::State x = protocol.add_state("x");
  const pp::State y = protocol.add_state("y");
  protocol.mark_accepting(x);
  protocol.add_transition(x, y, x, y);  // silent: cannot change anything
  protocol.finalize();
  const PairIndex index(protocol);
  EXPECT_EQ(index.num_active_pairs(), 0u);
}

TEST(CountSimulator, ConservesCountsExactly) {
  const pp::Protocol majority = baselines::make_majority();
  for (const bool null_skip : {false, true}) {
    CountSimOptions options;
    options.null_skip = null_skip;
    CountSimulator sim(majority, baselines::majority_initial(majority, 50, 50),
                       17, options);
    for (int step = 0; step < 20'000 && !sim.frozen(); ++step) {
      sim.step();
      if (step % 1'000 != 0) continue;
      EXPECT_EQ(sim.population(), 100u);
      std::uint64_t total = 0;
      for (std::uint32_t c : sim.config().counts()) total += c;
      EXPECT_EQ(total, 100u);
      EXPECT_EQ(sim.accepting_agents(),
                sim.config().accepting_count(majority));
    }
    EXPECT_EQ(sim.metrics().meetings, sim.interactions());
    EXPECT_LE(sim.metrics().firings, sim.metrics().meetings);
  }
}

TEST(CountSimulator, MatchesPerAgentDistribution) {
  const pp::Protocol opinion = make_opinion_protocol();
  const pp::Config initial = opinion_initial(opinion, 3, 3);
  pp::SimulationOptions options;
  options.stable_window = 200;
  options.max_interactions = 1'000'000;
  const std::uint64_t trials = 600;

  const SampleStats per_agent =
      sample_runs(trials, 1, options, [&](std::uint64_t seed) {
        return pp::Simulator(opinion, initial, seed);
      });
  const SampleStats count_skip =
      sample_runs(trials, 2, options, [&](std::uint64_t seed) {
        return CountSimulator(opinion, initial, seed);
      });

  // Every run of this protocol absorbs.
  EXPECT_EQ(per_agent.stabilised, trials);
  EXPECT_EQ(count_skip.stabilised, trials);

  // Acceptance fractions agree within 4 binomial standard errors of the
  // symmetric p = 1/2 (se = sqrt(2 * 0.25 / 600) ≈ 0.029).
  const double accept_a =
      static_cast<double>(per_agent.accepted) / static_cast<double>(trials);
  const double accept_b =
      static_cast<double>(count_skip.accepted) / static_cast<double>(trials);
  EXPECT_NEAR(accept_a, accept_b, 0.115);

  // Interactions-to-stabilisation distributions agree: chi-squared over
  // quantile bins, df <= 5, generous critical value (p < 0.001 is ~20.5).
  EXPECT_LT(chi_squared(per_agent.interactions, count_skip.interactions),
            25.0);
}

TEST(CountSimulator, NullSkipMatchesPlainCountStepping) {
  const pp::Protocol opinion = make_opinion_protocol();
  const pp::Config initial = opinion_initial(opinion, 4, 4);
  pp::SimulationOptions options;
  options.stable_window = 300;
  options.max_interactions = 1'000'000;
  const std::uint64_t trials = 400;

  CountSimOptions no_skip;
  no_skip.null_skip = false;
  const SampleStats plain =
      sample_runs(trials, 5, options, [&](std::uint64_t seed) {
        return CountSimulator(opinion, initial, seed, no_skip);
      });
  const SampleStats skip =
      sample_runs(trials, 6, options, [&](std::uint64_t seed) {
        return CountSimulator(opinion, initial, seed);
      });
  EXPECT_EQ(plain.stabilised, trials);
  EXPECT_EQ(skip.stabilised, trials);
  EXPECT_LT(chi_squared(plain.interactions, skip.interactions), 25.0);
}

TEST(CountSimulator, MatchesPerAgentOnOneSidedConvergence) {
  const pp::Protocol flock = baselines::make_flock_of_birds(3);
  const pp::Config initial = baselines::flock_initial(flock, 8);
  pp::SimulationOptions options;
  options.stable_window = 500;
  options.max_interactions = 1'000'000;
  const std::uint64_t trials = 400;

  const SampleStats per_agent =
      sample_runs(trials, 3, options, [&](std::uint64_t seed) {
        return pp::Simulator(flock, initial, seed);
      });
  const SampleStats count_skip =
      sample_runs(trials, 4, options, [&](std::uint64_t seed) {
        return CountSimulator(flock, initial, seed);
      });
  EXPECT_EQ(per_agent.stabilised, trials);
  EXPECT_EQ(per_agent.accepted, trials);  // 8 >= 3
  EXPECT_EQ(count_skip.accepted, trials);
  EXPECT_LT(chi_squared(per_agent.interactions, count_skip.interactions),
            25.0);
}

TEST(CountSimulator, FrozenConsensusStabilises) {
  // No transitions at all: the initial consensus is permanent and must be
  // reported after exactly stable_window meetings, from both engines.
  pp::Protocol protocol;
  const pp::State g = protocol.add_state("g");
  protocol.mark_input(g);
  protocol.mark_accepting(g);
  protocol.finalize();
  const pp::Config initial = pp::Config::single(1, g, 5);
  pp::SimulationOptions options;
  options.stable_window = 1'000;
  options.max_interactions = 50'000;

  CountSimulator count(protocol, initial, 9);
  EXPECT_TRUE(count.frozen());
  const pp::SimulationResult from_count = count.run_until_stable(options);
  pp::Simulator per_agent(protocol, initial, 9);
  const pp::SimulationResult from_agents =
      per_agent.run_until_stable(options);

  for (const pp::SimulationResult& result : {from_count, from_agents}) {
    EXPECT_TRUE(result.stabilised);
    EXPECT_TRUE(result.output);
    EXPECT_EQ(result.consensus_since, 0u);  // held from the very start
    EXPECT_EQ(result.interactions, 1'000u);
  }
}

TEST(CountSimulator, FrozenWithoutConsensusExhaustsBudget) {
  pp::Protocol protocol;
  const pp::State g = protocol.add_state("g");
  const pp::State h = protocol.add_state("h");
  protocol.mark_accepting(g);
  protocol.finalize();
  pp::Config initial(2);
  initial.add(g, 1);
  initial.add(h, 1);
  pp::SimulationOptions options;
  options.stable_window = 100;
  options.max_interactions = 5'000;

  CountSimulator sim(protocol, initial, 11);
  const pp::SimulationResult result = sim.run_until_stable(options);
  EXPECT_FALSE(result.stabilised);
  EXPECT_EQ(result.interactions, 5'000u);
  EXPECT_EQ(result.consensus_since, pp::SimulationResult::kNeverStabilised);
}

TEST(Simulator, ConsensusSinceSentinelIsUnambiguous) {
  const pp::Protocol majority = baselines::make_majority();
  pp::SimulationOptions options;
  options.stable_window = 100;
  options.max_interactions = 0;  // no budget: cannot stabilise
  pp::Simulator sim(majority, baselines::majority_initial(majority, 3, 3), 1);
  const pp::SimulationResult result = sim.run_until_stable(options);
  EXPECT_FALSE(result.stabilised);
  EXPECT_EQ(result.consensus_since, pp::SimulationResult::kNeverStabilised);
  EXPECT_EQ(pp::SimulationResult{}.consensus_since,
            pp::SimulationResult::kNeverStabilised);
}

TEST(CountSimulator, RemoveRandomAgentRespectsEligibility) {
  const pp::Protocol majority = baselines::make_majority();
  CountSimulator sim(majority, baselines::majority_initial(majority, 5, 5),
                     23);
  const pp::State big_a = majority.state("A");
  const auto removed = sim.remove_random_agent(
      [&](pp::State q) { return q == big_a; });
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(*removed, big_a);
  EXPECT_EQ(sim.population(), 9u);
  EXPECT_EQ(sim.config()[big_a], 4u);
  // Nobody is in state "b"; requesting one must fail without side effects.
  const pp::State small_b = majority.state("b");
  EXPECT_FALSE(sim.remove_random_agent(
                      [&](pp::State q) { return q == small_b; })
                   .has_value());
  EXPECT_EQ(sim.population(), 9u);
}

TEST(Ensemble, SeedDerivationIsStableAndCollisionFree) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t trial = 0; trial < 1'000; ++trial)
    seeds.insert(derive_trial_seed(42, trial));
  EXPECT_EQ(seeds.size(), 1'000u);
  // Pinned: the scheme (SplitMix64 stream) is part of the repository's
  // reproducibility contract — changing it silently would invalidate every
  // recorded ensemble experiment.
  EXPECT_EQ(derive_trial_seed(42, 0), derive_trial_seed(42, 0));
  EXPECT_NE(derive_trial_seed(42, 0), derive_trial_seed(43, 0));
}

TEST(Ensemble, StatsAreIndependentOfThreadCount) {
  const pp::Protocol flock = baselines::make_flock_of_birds(3);
  const pp::Config initial = baselines::flock_initial(flock, 10);
  EnsembleOptions options;
  options.trials = 24;
  options.master_seed = 7;
  options.sim.stable_window = 1'000;
  options.sim.max_interactions = 1'000'000;

  std::vector<EnsembleStats> runs;
  for (const unsigned threads : {1u, 4u, 3u, 8u}) {
    options.threads = threads;
    runs.push_back(run_ensemble(flock, initial, options));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].trials, runs[0].trials);
    EXPECT_EQ(runs[i].stabilised, runs[0].stabilised);
    EXPECT_EQ(runs[i].accepted, runs[0].accepted);
    EXPECT_EQ(runs[i].interactions.p50, runs[0].interactions.p50);
    EXPECT_EQ(runs[i].interactions.p90, runs[0].interactions.p90);
    EXPECT_EQ(runs[i].interactions.max, runs[0].interactions.max);
    EXPECT_EQ(runs[i].parallel_time.p50, runs[0].parallel_time.p50);
    EXPECT_EQ(runs[i].parallel_time.max, runs[0].parallel_time.max);
    EXPECT_EQ(runs[i].totals.meetings, runs[0].totals.meetings);
    EXPECT_EQ(runs[i].totals.firings, runs[0].totals.firings);
    EXPECT_EQ(runs[i].totals.null_skip_batches,
              runs[0].totals.null_skip_batches);
    EXPECT_EQ(runs[i].totals.skipped_meetings,
              runs[0].totals.skipped_meetings);
    EXPECT_EQ(runs[i].totals.consensus_flips,
              runs[0].totals.consensus_flips);
  }
}

TEST(Ensemble, EnginesAgreeOnVerdicts) {
  const pp::Protocol flock = baselines::make_flock_of_birds(3);
  const pp::Config initial = baselines::flock_initial(flock, 10);
  EnsembleOptions options;
  options.trials = 8;
  options.threads = 2;
  options.master_seed = 3;
  options.sim.stable_window = 1'000;
  options.sim.max_interactions = 1'000'000;
  for (const EngineKind engine :
       {EngineKind::kPerAgent, EngineKind::kCount,
        EngineKind::kCountNullSkip}) {
    options.engine = engine;
    const EnsembleStats stats = run_ensemble(flock, initial, options);
    EXPECT_EQ(stats.stabilised, options.trials) << to_string(engine);
    EXPECT_EQ(stats.accepted, options.trials) << to_string(engine);
    EXPECT_GT(stats.totals.meetings, 0u) << to_string(engine);
  }
}

TEST(Ensemble, FleetRethrowsBodyExceptions) {
  EXPECT_THROW(
      run_trial_fleet(8, 4, 1,
                      [](std::uint64_t trial, std::uint64_t) -> TrialResult {
                        if (trial == 5) throw std::runtime_error("boom");
                        return {};
                      }),
      std::runtime_error);
}

TEST(CountSimulator, CzernerPipelineSmoke) {
  // The engine's target workload: the converted n=1 construction, where
  // almost every meeting is null. Checks invariants and that null-skip
  // actually skips.
  const auto lowered =
      compile::lower_program(czerner::build_construction(1).program);
  const auto conv = compile::machine_to_protocol(lowered.machine);
  const std::uint64_t m = conv.num_pointers + 6;
  CountSimulator sim(conv.protocol, conv.initial_config(m), 31);
  for (int firing = 0; firing < 20'000 && !sim.frozen(); ++firing)
    sim.step();
  EXPECT_EQ(sim.population(), m);
  std::uint64_t total = 0;
  for (std::uint32_t c : sim.config().counts()) total += c;
  EXPECT_EQ(total, m);
  EXPECT_EQ(sim.accepting_agents(),
            sim.config().accepting_count(conv.protocol));
  EXPECT_EQ(sim.metrics().meetings, sim.interactions());
  EXPECT_GT(sim.metrics().skipped_meetings, 0u);
  EXPECT_GT(sim.metrics().null_skip_batches, 0u);
}

}  // namespace
}  // namespace ppde::engine
