// Tests for the ensemble simulation engine (DESIGN.md S21):
// distributional equivalence of CountSimulator against the per-agent
// pp::Simulator, exact count conservation, thread-count-independent
// determinism of ensemble statistics, and the consensus_since sentinel.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "baselines/flock.hpp"
#include "baselines/majority.hpp"
#include "compile/lower.hpp"
#include "compile/to_protocol.hpp"
#include "czerner/construction.hpp"
#include "engine/count_sim.hpp"
#include "engine/ensemble.hpp"
#include "engine/executor.hpp"
#include "engine/pool.hpp"
#include "engine/simd.hpp"
#include "engine/weight_tree.hpp"
#include "pp/simulator.hpp"
#include "support/rng.hpp"

namespace ppde::engine {
namespace {

// Two-opinion "initiator wins" protocol: (T,F -> T,T), (F,T -> F,F).
// From a mixed start the absorbing opinion is genuinely random, which makes
// it the right workload for comparing acceptance *distributions*.
pp::Protocol make_opinion_protocol() {
  pp::Protocol protocol;
  const pp::State t = protocol.add_state("T");
  const pp::State f = protocol.add_state("F");
  protocol.mark_input(t);
  protocol.mark_input(f);
  protocol.mark_accepting(t);
  protocol.add_transition(t, f, t, t);
  protocol.add_transition(f, t, f, f);
  protocol.finalize();
  return protocol;
}

pp::Config opinion_initial(const pp::Protocol& protocol, std::uint32_t t,
                           std::uint32_t f) {
  pp::Config config(protocol.num_states());
  config.add(protocol.state("T"), t);
  config.add(protocol.state("F"), f);
  return config;
}

struct SampleStats {
  std::uint64_t accepted = 0;
  std::uint64_t stabilised = 0;
  std::vector<double> interactions;
};

template <typename MakeSim>
SampleStats sample_runs(std::uint64_t trials, std::uint64_t seed_stream,
                        const pp::SimulationOptions& options,
                        MakeSim make_sim) {
  SampleStats stats;
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    auto sim = make_sim(derive_trial_seed(seed_stream, trial));
    const pp::SimulationResult result = sim.run_until_stable(options);
    if (result.stabilised) {
      ++stats.stabilised;
      if (result.output) ++stats.accepted;
    }
    stats.interactions.push_back(static_cast<double>(result.interactions));
  }
  return stats;
}

// Two-sample chi-squared statistic over quantile bins of the combined
// sample (equal sample sizes). Heavily tied samples collapse bins; the
// statistic stays valid because both samples share the tie structure.
double chi_squared(const std::vector<double>& a,
                   const std::vector<double>& b) {
  std::vector<double> combined = a;
  combined.insert(combined.end(), b.begin(), b.end());
  std::sort(combined.begin(), combined.end());
  std::vector<double> edges;
  for (int i = 1; i <= 5; ++i) {
    const double edge = combined[combined.size() * i / 6];
    if (edges.empty() || edge > edges.back()) edges.push_back(edge);
  }
  const auto histogram = [&](const std::vector<double>& values) {
    std::vector<double> bins(edges.size() + 1, 0.0);
    for (double v : values)
      bins[std::upper_bound(edges.begin(), edges.end(), v) - edges.begin()] +=
          1.0;
    return bins;
  };
  const std::vector<double> bins_a = histogram(a);
  const std::vector<double> bins_b = histogram(b);
  double statistic = 0.0;
  for (std::size_t i = 0; i < bins_a.size(); ++i) {
    const double total = bins_a[i] + bins_b[i];
    if (total == 0.0) continue;
    const double diff = bins_a[i] - bins_b[i];
    statistic += diff * diff / total;
  }
  return statistic;
}

// Verbatim reimplementation of the pre-Fenwick engine's stepping loop —
// full active-weight rescan per step, linear prefix scans for both meeting
// partners, responder walk over the initiator's complete partner list —
// kept here as the oracle for the bit-identicality contract (DESIGN.md
// S21): for the same seed, CountSimulator must visit the same
// configuration sequence, fire the same transitions, and settle the same
// consensus times as this loop, RNG draw for RNG draw.
class LinearScanOracle {
 public:
  LinearScanOracle(const pp::Protocol& protocol, const pp::Config& initial,
                   std::uint64_t seed, bool null_skip)
      : protocol_(&protocol),
        index_(protocol),
        null_skip_(null_skip),
        counts_(protocol.num_states()),
        rout_(protocol.num_states(), 0),
        position_(protocol.num_states(), kNone),
        rng_(seed) {
    for (pp::State q = 0; q < initial.num_states(); ++q)
      if (initial[q] != 0) counts_.add(q, initial[q]);
    for (pp::State q = 0; q < counts_.num_states(); ++q) {
      if (counts_[q] == 0) continue;
      if (protocol.is_accepting(q)) accepting_ += counts_[q];
      for (pp::State p : index_.initiators_meeting(q)) rout_[p] += counts_[q];
      position_[q] = static_cast<std::uint32_t>(populated_.size());
      populated_.push_back(q);
    }
  }

  const pp::Config& config() const { return counts_; }
  std::uint64_t interactions() const { return interactions_; }
  std::uint64_t meetings() const { return meetings_; }
  std::uint64_t firings() const { return firings_; }

  bool step() {
    if (!null_skip_) return step_meeting();
    const std::uint64_t active = active_weight();
    if (active == 0) {
      ++interactions_;
      ++meetings_;
      return false;
    }
    advance_nulls(sample_null_run(active));
    ++interactions_;
    ++meetings_;
    apply_active_meeting(active);
    return true;
  }

  pp::SimulationResult run_until_stable(const pp::SimulationOptions& options) {
    pp::SimulationResult result;
    std::uint64_t consensus_start = interactions_;
    std::optional<bool> held = consensus();
    while (interactions_ < options.max_interactions) {
      if (null_skip_) {
        const std::uint64_t active = active_weight();
        const std::uint64_t stable_at =
            consensus_start + options.stable_window;
        if (active == 0) {
          if (held.has_value() && stable_at <= options.max_interactions) {
            advance_nulls(stable_at - interactions_);
            result.stabilised = true;
            result.output = *held;
            result.consensus_since = consensus_start;
          } else {
            advance_nulls(options.max_interactions - interactions_);
          }
          break;
        }
        const std::uint64_t skip = sample_null_run(active);
        if (held.has_value() && stable_at <= interactions_ + skip) {
          advance_nulls(stable_at - interactions_);
          result.stabilised = true;
          result.output = *held;
          result.consensus_since = consensus_start;
          break;
        }
        if (interactions_ + skip >= options.max_interactions) {
          advance_nulls(options.max_interactions - interactions_);
          break;
        }
        advance_nulls(skip);
        ++interactions_;
        ++meetings_;
        apply_active_meeting(active);
      } else {
        step_meeting();
      }
      const std::optional<bool> now = consensus();
      if (now != held) {
        held = now;
        consensus_start = interactions_;
      }
      if (held.has_value() &&
          interactions_ - consensus_start >= options.stable_window) {
        result.stabilised = true;
        result.output = *held;
        result.consensus_since = consensus_start;
        break;
      }
    }
    result.interactions = interactions_;
    return result;
  }

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  std::optional<bool> consensus() const {
    if (accepting_ == counts_.total()) return true;
    if (accepting_ == 0) return false;
    return std::nullopt;
  }

  std::uint64_t active_weight() {
    std::uint64_t total = 0;
    weights_.resize(populated_.size());
    for (std::size_t i = 0; i < populated_.size(); ++i) {
      const pp::State q = populated_[i];
      const std::uint64_t weight =
          counts_[q] * (rout_[q] - (index_.self_active(q) ? 1 : 0));
      weights_[i] = weight;
      total += weight;
    }
    return total;
  }

  std::uint64_t sample_null_run(std::uint64_t active) {
    const double m = static_cast<double>(counts_.total());
    const double p = static_cast<double>(active) / (m * (m - 1.0));
    if (p >= 1.0) return 0;
    const double u = (static_cast<double>(rng_() >> 11) + 1.0) * 0x1.0p-53;
    const double k = std::floor(std::log(u) / std::log1p(-p));
    if (!(k >= 0.0)) return 0;
    if (k >= 1.8e19) return std::numeric_limits<std::uint64_t>::max() / 2;
    return static_cast<std::uint64_t>(k);
  }

  void advance_nulls(std::uint64_t count) {
    interactions_ += count;
    meetings_ += count;
  }

  void apply_active_meeting(std::uint64_t active) {
    std::uint64_t target = rng_.below(active);
    std::size_t slot = 0;
    for (;; ++slot) {
      if (target < weights_[slot]) break;
      target -= weights_[slot];
    }
    const pp::State q = populated_[slot];
    const std::uint64_t cq = counts_[q];
    pp::State r = q;
    for (pp::State partner : index_.partners_of(q)) {
      const std::uint64_t weight =
          cq * (counts_[partner] - (partner == q ? 1 : 0));
      if (target < weight) {
        r = partner;
        break;
      }
      target -= weight;
    }
    fire(q, r);
  }

  bool step_meeting() {
    ++interactions_;
    ++meetings_;
    const std::uint64_t m = counts_.total();
    if (m < 2) return false;
    std::uint64_t i = rng_.below(m);
    std::size_t slot = 0;
    while (i >= counts_[populated_[slot]]) i -= counts_[populated_[slot++]];
    const pp::State q = populated_[slot];
    std::uint64_t j = rng_.below(m - 1);
    pp::State r = 0;
    for (slot = 0;; ++slot) {
      const pp::State candidate = populated_[slot];
      const std::uint64_t c = counts_[candidate] - (candidate == q ? 1 : 0);
      if (j < c) {
        r = candidate;
        break;
      }
      j -= c;
    }
    if (protocol_->transitions_for(q, r).empty()) return false;
    fire(q, r);
    return true;
  }

  void fire(pp::State q, pp::State r) {
    const auto candidates = protocol_->transitions_for(q, r);
    ++firings_;
    const std::uint32_t pick =
        candidates.size() == 1 ? candidates[0]
                               : candidates[rng_.below(candidates.size())];
    const pp::Transition& t = protocol_->transitions()[pick];
    if (t.is_silent()) return;
    if (t.q != t.q2) {
      change_count(t.q, -1);
      change_count(t.q2, +1);
    }
    if (t.r != t.r2) {
      change_count(t.r, -1);
      change_count(t.r2, +1);
    }
  }

  void change_count(pp::State state, std::int64_t delta) {
    if (delta > 0)
      counts_.add(state, static_cast<std::uint32_t>(delta));
    else
      counts_.remove(state, static_cast<std::uint32_t>(-delta));
    const auto shift = static_cast<std::uint64_t>(delta);
    if (protocol_->is_accepting(state)) accepting_ += shift;
    for (pp::State p : index_.initiators_meeting(state)) rout_[p] += shift;
    if (counts_[state] == 0) {
      const std::uint32_t hole = position_[state];
      const pp::State moved = populated_.back();
      populated_[hole] = moved;
      position_[moved] = hole;
      populated_.pop_back();
      position_[state] = kNone;
    } else if (position_[state] == kNone) {
      position_[state] = static_cast<std::uint32_t>(populated_.size());
      populated_.push_back(state);
    }
  }

  const pp::Protocol* protocol_;
  PairIndex index_;
  bool null_skip_;
  pp::Config counts_;
  std::vector<std::uint64_t> rout_;
  std::vector<std::uint32_t> position_;
  std::vector<pp::State> populated_;
  std::vector<std::uint64_t> weights_;
  std::uint64_t accepting_ = 0;
  std::uint64_t interactions_ = 0;
  std::uint64_t meetings_ = 0;
  std::uint64_t firings_ = 0;
  support::Rng rng_;
};

// A 40-state "carousel" (every meeting advances the responder one state):
// all 1600 ordered pairs are active and the populated list fluctuates
// around 40 slots — past kLinearSlots and kMatrixSlots/2 — so the engine's
// tree-descent branches and swap-remove surgery all run, not just the
// small-population linear branches.
pp::Protocol make_carousel_protocol(std::uint32_t n) {
  pp::Protocol protocol;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name = "c";
    name += std::to_string(i);
    protocol.add_state(name);
  }
  protocol.mark_accepting(0);
  for (pp::State q = 0; q < n; ++q)
    for (pp::State r = 0; r < n; ++r)
      protocol.add_transition(q, r, q, (r + 1) % n);
  protocol.finalize();
  return protocol;
}

TEST(PairIndex, MarksExactlyTheNonSilentPairs) {
  const pp::Protocol majority = baselines::make_majority();
  const PairIndex index(majority);
  const pp::State big_a = majority.state("A");
  const pp::State big_b = majority.state("B");
  const pp::State small_a = majority.state("a");
  const pp::State small_b = majority.state("b");
  EXPECT_EQ(index.num_active_pairs(), 4u);
  EXPECT_EQ(index.partners_of(big_a).size(), 2u);  // B and b
  EXPECT_EQ(index.partners_of(big_b).size(), 1u);  // a
  EXPECT_EQ(index.partners_of(small_a).size(), 1u);  // b
  EXPECT_EQ(index.partners_of(small_b).size(), 0u);
  EXPECT_EQ(index.initiators_meeting(small_b).size(), 2u);  // A and a
  for (pp::State q : {big_a, big_b, small_a, small_b})
    EXPECT_FALSE(index.self_active(q));
}

TEST(PairIndex, AllSilentPairsAreNull) {
  pp::Protocol protocol;
  const pp::State x = protocol.add_state("x");
  const pp::State y = protocol.add_state("y");
  protocol.mark_accepting(x);
  protocol.add_transition(x, y, x, y);  // silent: cannot change anything
  protocol.finalize();
  const PairIndex index(protocol);
  EXPECT_EQ(index.num_active_pairs(), 0u);
}

TEST(CountSimulator, ConservesCountsExactly) {
  const pp::Protocol majority = baselines::make_majority();
  for (const bool null_skip : {false, true}) {
    CountSimOptions options;
    options.null_skip = null_skip;
    CountSimulator sim(majority, baselines::majority_initial(majority, 50, 50),
                       17, options);
    for (int step = 0; step < 20'000 && !sim.frozen(); ++step) {
      sim.step();
      if (step % 1'000 != 0) continue;
      EXPECT_EQ(sim.population(), 100u);
      std::uint64_t total = 0;
      for (std::uint32_t c : sim.config().counts()) total += c;
      EXPECT_EQ(total, 100u);
      EXPECT_EQ(sim.accepting_agents(),
                sim.config().accepting_count(majority));
    }
    EXPECT_EQ(sim.metrics().meetings, sim.interactions());
    EXPECT_LE(sim.metrics().firings, sim.metrics().meetings);
  }
}

TEST(CountSimulator, MatchesPerAgentDistribution) {
  const pp::Protocol opinion = make_opinion_protocol();
  const pp::Config initial = opinion_initial(opinion, 3, 3);
  pp::SimulationOptions options;
  options.stable_window = 200;
  options.max_interactions = 1'000'000;
  const std::uint64_t trials = 600;

  const SampleStats per_agent =
      sample_runs(trials, 1, options, [&](std::uint64_t seed) {
        return pp::Simulator(opinion, initial, seed);
      });
  const SampleStats count_skip =
      sample_runs(trials, 2, options, [&](std::uint64_t seed) {
        return CountSimulator(opinion, initial, seed);
      });

  // Every run of this protocol absorbs.
  EXPECT_EQ(per_agent.stabilised, trials);
  EXPECT_EQ(count_skip.stabilised, trials);

  // Acceptance fractions agree within 4 binomial standard errors of the
  // symmetric p = 1/2 (se = sqrt(2 * 0.25 / 600) ≈ 0.029).
  const double accept_a =
      static_cast<double>(per_agent.accepted) / static_cast<double>(trials);
  const double accept_b =
      static_cast<double>(count_skip.accepted) / static_cast<double>(trials);
  EXPECT_NEAR(accept_a, accept_b, 0.115);

  // Interactions-to-stabilisation distributions agree: chi-squared over
  // quantile bins, df <= 5, generous critical value (p < 0.001 is ~20.5).
  EXPECT_LT(chi_squared(per_agent.interactions, count_skip.interactions),
            25.0);
}

TEST(CountSimulator, NullSkipMatchesPlainCountStepping) {
  const pp::Protocol opinion = make_opinion_protocol();
  const pp::Config initial = opinion_initial(opinion, 4, 4);
  pp::SimulationOptions options;
  options.stable_window = 300;
  options.max_interactions = 1'000'000;
  const std::uint64_t trials = 400;

  CountSimOptions no_skip;
  no_skip.null_skip = false;
  const SampleStats plain =
      sample_runs(trials, 5, options, [&](std::uint64_t seed) {
        return CountSimulator(opinion, initial, seed, no_skip);
      });
  const SampleStats skip =
      sample_runs(trials, 6, options, [&](std::uint64_t seed) {
        return CountSimulator(opinion, initial, seed);
      });
  EXPECT_EQ(plain.stabilised, trials);
  EXPECT_EQ(skip.stabilised, trials);
  EXPECT_LT(chi_squared(plain.interactions, skip.interactions), 25.0);
}

TEST(CountSimulator, MatchesPerAgentOnOneSidedConvergence) {
  const pp::Protocol flock = baselines::make_flock_of_birds(3);
  const pp::Config initial = baselines::flock_initial(flock, 8);
  pp::SimulationOptions options;
  options.stable_window = 500;
  options.max_interactions = 1'000'000;
  const std::uint64_t trials = 400;

  const SampleStats per_agent =
      sample_runs(trials, 3, options, [&](std::uint64_t seed) {
        return pp::Simulator(flock, initial, seed);
      });
  const SampleStats count_skip =
      sample_runs(trials, 4, options, [&](std::uint64_t seed) {
        return CountSimulator(flock, initial, seed);
      });
  EXPECT_EQ(per_agent.stabilised, trials);
  EXPECT_EQ(per_agent.accepted, trials);  // 8 >= 3
  EXPECT_EQ(count_skip.accepted, trials);
  EXPECT_LT(chi_squared(per_agent.interactions, count_skip.interactions),
            25.0);
}

TEST(CountSimulator, FrozenConsensusStabilises) {
  // No transitions at all: the initial consensus is permanent and must be
  // reported after exactly stable_window meetings, from both engines.
  pp::Protocol protocol;
  const pp::State g = protocol.add_state("g");
  protocol.mark_input(g);
  protocol.mark_accepting(g);
  protocol.finalize();
  const pp::Config initial = pp::Config::single(1, g, 5);
  pp::SimulationOptions options;
  options.stable_window = 1'000;
  options.max_interactions = 50'000;

  CountSimulator count(protocol, initial, 9);
  EXPECT_TRUE(count.frozen());
  const pp::SimulationResult from_count = count.run_until_stable(options);
  pp::Simulator per_agent(protocol, initial, 9);
  const pp::SimulationResult from_agents =
      per_agent.run_until_stable(options);

  for (const pp::SimulationResult& result : {from_count, from_agents}) {
    EXPECT_TRUE(result.stabilised);
    EXPECT_TRUE(result.output);
    EXPECT_EQ(result.consensus_since, 0u);  // held from the very start
    EXPECT_EQ(result.interactions, 1'000u);
  }
}

TEST(CountSimulator, FrozenWithoutConsensusExhaustsBudget) {
  pp::Protocol protocol;
  const pp::State g = protocol.add_state("g");
  const pp::State h = protocol.add_state("h");
  protocol.mark_accepting(g);
  protocol.finalize();
  pp::Config initial(2);
  initial.add(g, 1);
  initial.add(h, 1);
  pp::SimulationOptions options;
  options.stable_window = 100;
  options.max_interactions = 5'000;

  CountSimulator sim(protocol, initial, 11);
  const pp::SimulationResult result = sim.run_until_stable(options);
  EXPECT_FALSE(result.stabilised);
  EXPECT_EQ(result.interactions, 5'000u);
  EXPECT_EQ(result.consensus_since, pp::SimulationResult::kNeverStabilised);
}

TEST(Simulator, ConsensusSinceSentinelIsUnambiguous) {
  const pp::Protocol majority = baselines::make_majority();
  pp::SimulationOptions options;
  options.stable_window = 100;
  options.max_interactions = 0;  // no budget: cannot stabilise
  pp::Simulator sim(majority, baselines::majority_initial(majority, 3, 3), 1);
  const pp::SimulationResult result = sim.run_until_stable(options);
  EXPECT_FALSE(result.stabilised);
  EXPECT_EQ(result.consensus_since, pp::SimulationResult::kNeverStabilised);
  EXPECT_EQ(pp::SimulationResult{}.consensus_since,
            pp::SimulationResult::kNeverStabilised);
}

TEST(CountSimulator, RemoveRandomAgentRespectsEligibility) {
  const pp::Protocol majority = baselines::make_majority();
  CountSimulator sim(majority, baselines::majority_initial(majority, 5, 5),
                     23);
  const pp::State big_a = majority.state("A");
  const auto removed = sim.remove_random_agent(
      [&](pp::State q) { return q == big_a; });
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(*removed, big_a);
  EXPECT_EQ(sim.population(), 9u);
  EXPECT_EQ(sim.config()[big_a], 4u);
  // Nobody is in state "b"; requesting one must fail without side effects.
  const pp::State small_b = majority.state("b");
  EXPECT_FALSE(sim.remove_random_agent(
                      [&](pp::State q) { return q == small_b; })
                   .has_value());
  EXPECT_EQ(sim.population(), 9u);
}

TEST(Ensemble, SeedDerivationIsStableAndCollisionFree) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t trial = 0; trial < 1'000; ++trial)
    seeds.insert(derive_trial_seed(42, trial));
  EXPECT_EQ(seeds.size(), 1'000u);
  // Pinned: the scheme (SplitMix64 stream) is part of the repository's
  // reproducibility contract — changing it silently would invalidate every
  // recorded ensemble experiment.
  EXPECT_EQ(derive_trial_seed(42, 0), derive_trial_seed(42, 0));
  EXPECT_NE(derive_trial_seed(42, 0), derive_trial_seed(43, 0));
}

TEST(Ensemble, StatsAreIndependentOfThreadCount) {
  const pp::Protocol flock = baselines::make_flock_of_birds(3);
  const pp::Config initial = baselines::flock_initial(flock, 10);
  EnsembleOptions options;
  options.trials = 24;
  options.master_seed = 7;
  options.sim.stable_window = 1'000;
  options.sim.max_interactions = 1'000'000;

  std::vector<EnsembleStats> runs;
  for (const unsigned threads : {1u, 4u, 3u, 8u}) {
    options.threads = threads;
    runs.push_back(run_ensemble(flock, initial, options));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].trials, runs[0].trials);
    EXPECT_EQ(runs[i].stabilised, runs[0].stabilised);
    EXPECT_EQ(runs[i].accepted, runs[0].accepted);
    EXPECT_EQ(runs[i].interactions.p50, runs[0].interactions.p50);
    EXPECT_EQ(runs[i].interactions.p90, runs[0].interactions.p90);
    EXPECT_EQ(runs[i].interactions.max, runs[0].interactions.max);
    EXPECT_EQ(runs[i].parallel_time.p50, runs[0].parallel_time.p50);
    EXPECT_EQ(runs[i].parallel_time.max, runs[0].parallel_time.max);
    EXPECT_EQ(runs[i].totals.meetings, runs[0].totals.meetings);
    EXPECT_EQ(runs[i].totals.firings, runs[0].totals.firings);
    EXPECT_EQ(runs[i].totals.null_skip_batches,
              runs[0].totals.null_skip_batches);
    EXPECT_EQ(runs[i].totals.skipped_meetings,
              runs[0].totals.skipped_meetings);
    EXPECT_EQ(runs[i].totals.consensus_flips,
              runs[0].totals.consensus_flips);
    // The incremental-maintenance counters ride the same trajectories, so
    // they must be just as thread-count-deterministic as the physics.
    EXPECT_EQ(runs[i].totals.weight_updates, runs[0].totals.weight_updates);
    EXPECT_EQ(runs[i].totals.tree_descents, runs[0].totals.tree_descents);
  }
  EXPECT_GT(runs[0].totals.tree_descents, 0u);
}

TEST(Ensemble, EnginesAgreeOnVerdicts) {
  const pp::Protocol flock = baselines::make_flock_of_birds(3);
  const pp::Config initial = baselines::flock_initial(flock, 10);
  EnsembleOptions options;
  options.trials = 8;
  options.threads = 2;
  options.master_seed = 3;
  options.sim.stable_window = 1'000;
  options.sim.max_interactions = 1'000'000;
  for (const EngineKind engine :
       {EngineKind::kPerAgent, EngineKind::kCount,
        EngineKind::kCountNullSkip}) {
    options.engine = engine;
    const EnsembleStats stats = run_ensemble(flock, initial, options);
    EXPECT_EQ(stats.stabilised, options.trials) << to_string(engine);
    EXPECT_EQ(stats.accepted, options.trials) << to_string(engine);
    EXPECT_GT(stats.totals.meetings, 0u) << to_string(engine);
  }
}

TEST(Ensemble, FleetRethrowsBodyExceptions) {
  EXPECT_THROW(
      run_trial_fleet(8, 4, 1,
                      [](std::uint64_t trial, std::uint64_t) -> TrialResult {
                        if (trial == 5) throw std::runtime_error("boom");
                        return {};
                      }),
      std::runtime_error);
}

TEST(CountSimulator, BitIdenticalToLinearScanOracle) {
  // The tentpole contract: same seed, same trajectory, bit for bit — the
  // Fenwick/matrix machinery may only change how fast the next firing is
  // found, never which firing it is. Four protocols cover the regimes:
  // tiny two-state, the 4-state majority, the converted Czerner n = 1
  // (≈880 states, ~24 populated, heavy populate/depopulate churn), and a
  // 40-state carousel that pushes past the linear-scan thresholds.
  const pp::Protocol opinion = make_opinion_protocol();
  const pp::Protocol majority = baselines::make_majority();
  const auto lowered =
      compile::lower_program(czerner::build_construction(1).program);
  const auto conv = compile::machine_to_protocol(lowered.machine);
  const pp::Protocol carousel = make_carousel_protocol(40);
  pp::Config carousel_initial(carousel.num_states());
  for (pp::State q = 0; q < 40; ++q) carousel_initial.add(q, 3);

  struct Case {
    const pp::Protocol* protocol;
    pp::Config initial;
    int steps;
  };
  const Case cases[] = {
      {&opinion, opinion_initial(opinion, 5, 4), 4'000},
      {&majority, baselines::majority_initial(majority, 23, 20), 4'000},
      {&conv.protocol, conv.initial_config(conv.num_pointers + 400), 12'000},
      {&carousel, carousel_initial, 12'000},
  };
  for (const Case& test_case : cases) {
    for (const bool null_skip : {true, false}) {
      for (const std::uint64_t seed : {1ull, 29ull}) {
        CountSimOptions options;
        options.null_skip = null_skip;
        CountSimulator sim(*test_case.protocol, test_case.initial, seed,
                           options);
        LinearScanOracle oracle(*test_case.protocol, test_case.initial, seed,
                                null_skip);
        for (int step = 0; step < test_case.steps; ++step) {
          sim.step();
          oracle.step();
          ASSERT_EQ(sim.interactions(), oracle.interactions())
              << "step " << step << " skip=" << null_skip;
          ASSERT_EQ(sim.metrics().firings, oracle.firings())
              << "step " << step << " skip=" << null_skip;
          if (step % 64 == 0 || step + 1 == test_case.steps) {
            ASSERT_EQ(sim.config(), oracle.config())
                << "step " << step << " skip=" << null_skip;
          }
        }
        ASSERT_EQ(sim.metrics().meetings, oracle.meetings());
      }
    }
  }
}

TEST(CountSimulator, RunUntilStableMatchesOracle) {
  // consensus_since, stabilised, output and the final interaction count
  // all come out of the same trajectory, so they must match the oracle's
  // run loop exactly — including the closed-form window completions.
  const pp::Protocol opinion = make_opinion_protocol();
  const pp::Protocol flock = baselines::make_flock_of_birds(3);
  struct Case {
    const pp::Protocol* protocol;
    pp::Config initial;
  };
  const Case cases[] = {
      {&opinion, opinion_initial(opinion, 4, 4)},
      {&flock, baselines::flock_initial(flock, 9)},
  };
  pp::SimulationOptions options;
  options.stable_window = 400;
  options.max_interactions = 1'000'000;
  for (const Case& test_case : cases) {
    for (const bool null_skip : {true, false}) {
      for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        CountSimOptions sim_options;
        sim_options.null_skip = null_skip;
        CountSimulator sim(*test_case.protocol, test_case.initial, seed,
                           sim_options);
        LinearScanOracle oracle(*test_case.protocol, test_case.initial, seed,
                                null_skip);
        const pp::SimulationResult ours = sim.run_until_stable(options);
        const pp::SimulationResult reference =
            oracle.run_until_stable(options);
        ASSERT_EQ(ours.stabilised, reference.stabilised) << seed;
        ASSERT_EQ(ours.output, reference.output) << seed;
        ASSERT_EQ(ours.interactions, reference.interactions) << seed;
        ASSERT_EQ(ours.consensus_since, reference.consensus_since) << seed;
        ASSERT_EQ(sim.config(), oracle.config()) << seed;
      }
    }
  }
}

TEST(WeightTree, MatchesLinearReference) {
  // Randomised differential against a plain vector: push/pop/set in any
  // order, and find() must select exactly the slot the linear prefix scan
  // selects — zero-weight slots (including runs of them) never absorb a
  // target, and `remaining` is the scan's leftover offset.
  support::Rng rng(2024);
  WeightTree tree(64);
  std::vector<std::uint64_t> reference;
  for (int op = 0; op < 4'000; ++op) {
    const std::uint64_t choice = rng.below(10);
    if (choice < 3 && reference.size() < 64) {
      const std::uint64_t value = rng.below(5);  // zeros are common
      tree.push_back(value);
      reference.push_back(value);
    } else if (choice < 4 && !reference.empty()) {
      tree.pop_back();
      reference.pop_back();
    } else if (!reference.empty()) {
      const auto slot = static_cast<std::size_t>(rng.below(reference.size()));
      const std::uint64_t value = rng.below(7);
      tree.set(slot, value);
      reference[slot] = value;
    }
    ASSERT_EQ(tree.size(), reference.size());
    std::uint64_t total = 0;
    for (std::uint64_t w : reference) total += w;
    ASSERT_EQ(tree.total(), total);
    if (total == 0) continue;
    // Probe a handful of targets, always including both boundaries.
    for (const std::uint64_t target :
         {std::uint64_t{0}, total - 1, rng.below(total), rng.below(total)}) {
      std::size_t expected_slot = 0;
      std::uint64_t expected_remaining = target;
      while (expected_remaining >= reference[expected_slot])
        expected_remaining -= reference[expected_slot++];
      std::uint64_t remaining = 0;
      const std::size_t slot = tree.find(target, &remaining);
      ASSERT_EQ(slot, expected_slot) << "target " << target;
      ASSERT_EQ(remaining, expected_remaining) << "target " << target;
      ASSERT_GT(reference[slot], remaining);  // never a zero-weight slot
    }
  }
}

TEST(CountSimulator, TinyPopulationsFreezeInsteadOfDividing) {
  // Regression for the m <= 1 hazard: sample_null_run's geometric law
  // divides by m·(m−1) and the meeting sampler draws below(m−1); empty and
  // single-agent configurations must freeze immediately instead.
  const pp::Protocol opinion = make_opinion_protocol();
  for (const bool null_skip : {true, false}) {
    CountSimOptions options;
    options.null_skip = null_skip;
    pp::SimulationOptions run;
    run.stable_window = 50;
    run.max_interactions = 1'000;

    pp::Config lone(opinion.num_states());
    lone.add(opinion.state("T"), 1);
    CountSimulator single(opinion, lone, 3, options);
    EXPECT_TRUE(single.frozen());
    EXPECT_FALSE(single.step());
    EXPECT_EQ(single.interactions(), 1u);
    const pp::SimulationResult result = single.run_until_stable(run);
    EXPECT_TRUE(result.stabilised);
    EXPECT_TRUE(result.output);  // the lone agent accepts
    // The manual step above burnt one interaction; the window starts there.
    EXPECT_EQ(result.consensus_since, 1u);
    EXPECT_EQ(single.config()[opinion.state("T")], 1u);

    pp::Config empty(opinion.num_states());
    CountSimulator none(opinion, empty, 3, options);
    EXPECT_TRUE(none.frozen());
    EXPECT_FALSE(none.step());
    const pp::SimulationResult vacuous = none.run_until_stable(run);
    EXPECT_TRUE(vacuous.stabilised);  // vacuous consensus, documented
  }
}

TEST(CountSimulator, BudgetBoundaryOnFrozenConsensus) {
  // Zero active weight with a held consensus: the closed-form fast-forward
  // must stabilise exactly when the window fits the budget and exhaust the
  // budget (without stabilising) when it misses by one.
  pp::Protocol protocol;
  const pp::State g = protocol.add_state("g");
  protocol.mark_input(g);
  protocol.mark_accepting(g);
  protocol.finalize();
  const pp::Config initial = pp::Config::single(1, g, 4);
  pp::SimulationOptions exact;
  exact.stable_window = 1'000;
  exact.max_interactions = 1'000;  // stable_at == budget: just fits
  pp::SimulationOptions short_by_one;
  short_by_one.stable_window = 1'000;
  short_by_one.max_interactions = 999;

  CountSimulator fits(protocol, initial, 5);
  const pp::SimulationResult on_time = fits.run_until_stable(exact);
  EXPECT_TRUE(on_time.stabilised);
  EXPECT_EQ(on_time.interactions, 1'000u);
  EXPECT_EQ(on_time.consensus_since, 0u);

  CountSimulator misses(protocol, initial, 5);
  const pp::SimulationResult late = misses.run_until_stable(short_by_one);
  EXPECT_FALSE(late.stabilised);
  EXPECT_EQ(late.interactions, 999u);
  EXPECT_EQ(late.consensus_since, pp::SimulationResult::kNeverStabilised);
}

TEST(CountSimulator, ResetMatchesFreshConstruction) {
  // run_trial_fleet reuses one simulator per worker; reset(Config, seed)
  // must therefore be indistinguishable from constructing fresh — same
  // trajectory, same metrics — even after a prior run left the simulator
  // in an arbitrary state.
  const pp::Protocol majority = baselines::make_majority();
  const pp::Config initial = baselines::majority_initial(majority, 13, 11);
  for (const bool null_skip : {true, false}) {
    CountSimOptions options;
    options.null_skip = null_skip;
    CountSimulator fresh(majority, initial, 77, options);
    CountSimulator reused(
        majority, baselines::majority_initial(majority, 40, 2), 5, options);
    for (int step = 0; step < 500; ++step) reused.step();  // arbitrary state
    reused.reset(initial, 77);
    EXPECT_EQ(reused.interactions(), 0u);
    EXPECT_EQ(reused.metrics().firings, 0u);
    for (int step = 0; step < 2'000; ++step) {
      fresh.step();
      reused.step();
    }
    EXPECT_EQ(fresh.config(), reused.config());
    EXPECT_EQ(fresh.interactions(), reused.interactions());
    EXPECT_EQ(fresh.metrics().firings, reused.metrics().firings);
    EXPECT_EQ(fresh.metrics().meetings, reused.metrics().meetings);
    EXPECT_EQ(fresh.metrics().weight_updates, reused.metrics().weight_updates);
    EXPECT_EQ(fresh.metrics().tree_descents, reused.metrics().tree_descents);
  }
}

TEST(CountSimulator, MetricsObserveTheIncrementalPath) {
  // The incremental machinery is observable: every firing in null-skip
  // mode selects through one weight descent, and each fired transition
  // updates at least the slots it touched.
  const auto lowered =
      compile::lower_program(czerner::build_construction(1).program);
  const auto conv = compile::machine_to_protocol(lowered.machine);
  CountSimulator sim(conv.protocol,
                     conv.initial_config(conv.num_pointers + 50), 13);
  for (int step = 0; step < 5'000; ++step) sim.step();
  EXPECT_EQ(sim.metrics().tree_descents, sim.metrics().firings);
  EXPECT_GT(sim.metrics().weight_updates, sim.metrics().firings);
}

TEST(CountSimulator, CzernerPipelineSmoke) {
  // The engine's target workload: the converted n=1 construction, where
  // almost every meeting is null. Checks invariants and that null-skip
  // actually skips.
  const auto lowered =
      compile::lower_program(czerner::build_construction(1).program);
  const auto conv = compile::machine_to_protocol(lowered.machine);
  const std::uint64_t m = conv.num_pointers + 6;
  CountSimulator sim(conv.protocol, conv.initial_config(m), 31);
  for (int firing = 0; firing < 20'000 && !sim.frozen(); ++firing)
    sim.step();
  EXPECT_EQ(sim.population(), m);
  std::uint64_t total = 0;
  for (std::uint32_t c : sim.config().counts()) total += c;
  EXPECT_EQ(total, m);
  EXPECT_EQ(sim.accepting_agents(),
            sim.config().accepting_count(conv.protocol));
  EXPECT_EQ(sim.metrics().meetings, sim.interactions());
  EXPECT_GT(sim.metrics().skipped_meetings, 0u);
  EXPECT_GT(sim.metrics().null_skip_batches, 0u);
}

// Pinned oracle for RunMetrics accumulation semantics (S24): the obs
// registry mirrors these counters for live observation, so the record's
// own merge/render behaviour must stay exactly what aggregate() and
// certify_trials() fold on.

TEST(RunMetrics, MergeSumsEveryFieldIncludingWallTime) {
  RunMetrics a;
  a.meetings = 10;
  a.firings = 7;
  a.null_skip_batches = 3;
  a.skipped_meetings = 5;
  a.consensus_flips = 2;
  a.weight_updates = 11;
  a.tree_descents = 13;
  a.wall_seconds = 0.25;
  RunMetrics b;
  b.meetings = 100;
  b.firings = 70;
  b.null_skip_batches = 30;
  b.skipped_meetings = 50;
  b.consensus_flips = 20;
  b.weight_updates = 110;
  b.tree_descents = 130;
  b.wall_seconds = 0.5;

  a.merge(b);
  EXPECT_EQ(a.meetings, 110u);
  EXPECT_EQ(a.firings, 77u);
  EXPECT_EQ(a.null_skip_batches, 33u);
  EXPECT_EQ(a.skipped_meetings, 55u);
  EXPECT_EQ(a.consensus_flips, 22u);
  EXPECT_EQ(a.weight_updates, 121u);
  EXPECT_EQ(a.tree_descents, 143u);
  EXPECT_DOUBLE_EQ(a.wall_seconds, 0.75);

  // Merging a default-constructed record is the identity.
  RunMetrics before = a;
  a.merge(RunMetrics{});
  EXPECT_EQ(a.meetings, before.meetings);
  EXPECT_DOUBLE_EQ(a.wall_seconds, before.wall_seconds);
}

TEST(RunMetrics, MergeIsAssociativeOnCounters) {
  RunMetrics x, y, z;
  x.meetings = 1;
  y.meetings = 2;
  z.meetings = 4;
  x.firings = 8;
  y.firings = 16;
  z.firings = 32;

  RunMetrics left = x;
  left.merge(y);
  left.merge(z);
  RunMetrics yz = y;
  yz.merge(z);
  RunMetrics right = x;
  right.merge(yz);
  EXPECT_EQ(left.meetings, right.meetings);
  EXPECT_EQ(left.firings, right.firings);
  EXPECT_EQ(left.meetings, 7u);
  EXPECT_EQ(left.firings, 56u);
}

TEST(RunMetrics, ToStringRendersEveryField) {
  RunMetrics m;
  m.meetings = 1;
  m.firings = 2;
  m.null_skip_batches = 3;
  m.skipped_meetings = 4;
  m.consensus_flips = 5;
  m.weight_updates = 6;
  m.tree_descents = 7;
  m.wall_seconds = 1.5;
  EXPECT_EQ(m.to_string(),
            "meetings=1 firings=2 null_skip_batches=3 skipped=4 flips=5 "
            "weight_updates=6 tree_descents=7 wall=1.500s");
}

TEST(RunMetrics, EffectiveRateGuardsDegenerateWallTimes) {
  RunMetrics m;
  m.meetings = 1000;
  m.wall_seconds = 0.0;
  EXPECT_EQ(m.effective_meetings_per_second(), 0.0);
  m.wall_seconds = 2.0;
  EXPECT_DOUBLE_EQ(m.effective_meetings_per_second(), 500.0);
  m.wall_seconds = -1.0;
  EXPECT_EQ(m.effective_meetings_per_second(), 0.0);
}

// ---------------------------------------------------------------------------
// Worker-pool lifecycle edges (S25 satellite): construction/destruction
// without work, heavy reuse, exception propagation from several workers at
// once, and resubmission after a failed round. Run under TSan in CI.

TEST(WorkerPool, ConstructDestroyWithoutWork) {
  for (const unsigned threads : {1u, 2u, 8u}) {
    WorkerPool pool(threads);
    EXPECT_GE(pool.workers(), 1u);
  }
}

TEST(WorkerPool, ManySequentialRoundsReuseTheSameThreads) {
  WorkerPool pool(4);
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 100; ++round)
    pool.parallel_for(64, [&](std::uint64_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  EXPECT_EQ(total.load(), 6400u);
}

TEST(WorkerPool, FirstExceptionWinsWhenManyWorkersThrow) {
  WorkerPool pool(4);
  // Every index throws; the pool must drain (no hang, no worker stuck on
  // a dead round) and rethrow exactly one of them.
  try {
    pool.parallel_for(256, [](std::uint64_t i) {
      throw std::runtime_error("item " + std::to_string(i));
    });
    FAIL() << "parallel_for swallowed the exceptions";
  } catch (const std::runtime_error& error) {
    EXPECT_EQ(std::string(error.what()).rfind("item ", 0), 0u);
  }
}

TEST(WorkerPool, ResubmitAfterAFailedRoundWorks) {
  WorkerPool pool(3);
  EXPECT_THROW(pool.parallel_for(
                   8, [](std::uint64_t) { throw std::logic_error("boom"); }),
               std::logic_error);
  // The failed round must not poison the pool: a clean round right after
  // runs every index exactly once.
  std::vector<std::atomic<int>> hits(32);
  pool.parallel_for_workers(32, [&](unsigned worker, std::uint64_t i) {
    EXPECT_LT(worker, pool.workers());
    hits[i].fetch_add(1);
  });
  for (const std::atomic<int>& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(Ensemble, FleetErrorNamesTheLowestFailingTrial) {
  try {
    run_trial_fleet(16, 4, 1,
                    [](std::uint64_t trial, std::uint64_t) -> TrialResult {
                      if (trial >= 6) throw std::runtime_error("boom");
                      return {};
                    });
    FAIL() << "fleet swallowed the exception";
  } catch (const std::runtime_error& error) {
    // Lowest failing index with the original message — never a silent
    // partial EnsembleStats, never an unrelated trial's index.
    const std::string what = error.what();
    EXPECT_NE(what.find("trial 6"), std::string::npos) << what;
    EXPECT_NE(what.find("boom"), std::string::npos) << what;
  }
}

TEST(Ensemble, TrialRangeReproducesFleetSlices) {
  const auto body = [](unsigned, std::uint64_t trial,
                       std::uint64_t seed) -> TrialResult {
    TrialResult result;
    result.seed = seed;
    result.sim.interactions = trial * 1000 + seed % 997;
    result.metrics.meetings = seed % 31;
    return result;
  };
  const std::vector<TrialResult> fleet = run_trial_fleet(20, 2, 42, body);
  // Any partition into ranges reproduces the fleet results exactly —
  // the property the serve daemon's shard dispatch stands on.
  for (const auto& [first, count] :
       {std::pair<std::uint64_t, std::uint64_t>{0, 20},
        {3, 5},
        {19, 1},
        {0, 1}}) {
    const std::vector<TrialResult> range =
        run_trial_range(first, count, 3, 42, body);
    ASSERT_EQ(range.size(), count);
    for (std::uint64_t i = 0; i < count; ++i) {
      EXPECT_EQ(range[i].seed, fleet[first + i].seed);
      EXPECT_EQ(range[i].sim.interactions, fleet[first + i].sim.interactions);
      EXPECT_EQ(range[i].metrics.meetings, fleet[first + i].metrics.meetings);
    }
  }
}

// -- S28 lockstep batch core ------------------------------------------------

TEST(BatchSim, SimdRngBatchMatchesScalarStreams) {
  // rng_next_batch must be bit-identical to one operator() call per lane,
  // output *and* post-call state, at every n — covering the vector body,
  // the scalar remainder tail, and their seam.
  for (std::size_t n = 1; n <= 17; ++n) {
    std::vector<support::Rng> batched, scalar;
    std::vector<support::Rng*> pointers;
    for (std::size_t i = 0; i < n; ++i) {
      batched.emplace_back(1000 * n + i);
      scalar.emplace_back(1000 * n + i);
    }
    for (std::size_t i = 0; i < n; ++i) pointers.push_back(&batched[i]);
    std::vector<std::uint64_t> out(n);
    // Two rounds: the second catches a first-round state-writeback bug the
    // first round's outputs would mask.
    for (int round = 0; round < 2; ++round) {
      simd::rng_next_batch(pointers.data(), n, out.data());
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(out[i], scalar[i]()) << "n=" << n << " lane=" << i;
    }
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(batched[i](), scalar[i]()) << "n=" << n << " lane=" << i;
  }
}

/// Everything deterministic in a TrialResult — i.e. all of it except the
/// wall-clock seconds, which under lockstep measure lane residency (lanes
/// overlap; see batch_sim.hpp) and are excluded by contract.
void expect_same_trial(const TrialResult& a, const TrialResult& b,
                       const std::string& label) {
  EXPECT_EQ(a.seed, b.seed) << label;
  EXPECT_EQ(a.sim.stabilised, b.sim.stabilised) << label;
  EXPECT_EQ(a.sim.output, b.sim.output) << label;
  EXPECT_EQ(a.sim.interactions, b.sim.interactions) << label;
  EXPECT_EQ(a.sim.consensus_since, b.sim.consensus_since) << label;
  EXPECT_EQ(a.sim.parallel_time, b.sim.parallel_time) << label;
  EXPECT_EQ(a.metrics.meetings, b.metrics.meetings) << label;
  EXPECT_EQ(a.metrics.firings, b.metrics.firings) << label;
  EXPECT_EQ(a.metrics.null_skip_batches, b.metrics.null_skip_batches)
      << label;
  EXPECT_EQ(a.metrics.skipped_meetings, b.metrics.skipped_meetings) << label;
  EXPECT_EQ(a.metrics.consensus_flips, b.metrics.consensus_flips) << label;
  EXPECT_EQ(a.metrics.weight_updates, b.metrics.weight_updates) << label;
  EXPECT_EQ(a.metrics.tree_descents, b.metrics.tree_descents) << label;
}

TEST(BatchSim, RunRangeBitIdenticalToScalarAcrossWidths) {
  // The S28 contract: every lane consumes exactly the seed stream the
  // scalar executor defines, so run_range at any width reproduces the
  // scalar per-trial loop bit for bit. The opinion protocol stabilises at
  // genuinely different times per trial, so lanes retire early and refill
  // mid-range; 21 trials is ragged against every width tested.
  const pp::Protocol protocol = make_opinion_protocol();
  const pp::Config initial = opinion_initial(protocol, 30, 30);
  pp::SimulationOptions options;
  options.stable_window = 2'000;
  options.max_interactions = 10'000'000;
  constexpr std::uint64_t kSeed = 42;
  constexpr std::size_t kTrials = 21;
  const sched::Scenario uniform;

  for (const isa::Dispatch dispatch :
       {isa::Dispatch::kBytecode, isa::Dispatch::kInterp}) {
    TrialExecutor scalar(protocol, EngineKind::kCountNullSkip, dispatch,
                         uniform, /*workers=*/1, /*batch=*/1);
    ASSERT_EQ(scalar.batch_width(), 1u);
    std::vector<TrialResult> reference(kTrials);
    for (std::size_t i = 0; i < kTrials; ++i)
      reference[i] =
          scalar.run(0, initial, derive_trial_seed(kSeed, i), options);
    // At least one trial must retire before the longest-running one, or
    // the refill path is untested.
    std::uint64_t shortest = reference[0].sim.interactions;
    std::uint64_t longest = reference[0].sim.interactions;
    for (const TrialResult& r : reference) {
      shortest = std::min(shortest, r.sim.interactions);
      longest = std::max(longest, r.sim.interactions);
    }
    ASSERT_LT(shortest, longest);

    for (const std::uint32_t width : {2u, 8u, 16u}) {
      TrialExecutor batched(protocol, EngineKind::kCountNullSkip, dispatch,
                            uniform, /*workers=*/1, width);
      ASSERT_EQ(batched.batch_width(), width);
      const std::string label = "dispatch=" + std::string(to_string(dispatch)) +
                                " width=" + std::to_string(width);
      std::vector<TrialResult> got(kTrials);
      batched.run_range(0, initial, kSeed, /*first_trial=*/0, kTrials,
                        options, got.data());
      for (std::size_t i = 0; i < kTrials; ++i)
        expect_same_trial(got[i], reference[i],
                          label + " trial=" + std::to_string(i));
      // A mid-stream sub-range must see the same global seeds (the serve
      // shard law): [5, 5 + 7) against the reference slice.
      std::vector<TrialResult> slice(7);
      batched.run_range(0, initial, kSeed, /*first_trial=*/5, 7, options,
                        slice.data());
      for (std::size_t i = 0; i < 7; ++i)
        expect_same_trial(slice[i], reference[5 + i],
                          label + " slice trial=" + std::to_string(5 + i));
    }
  }
}

TEST(BatchSim, LockstepOnlyAppliesWhereItCan) {
  const pp::Protocol protocol = make_opinion_protocol();
  const sched::Scenario uniform;
  // Plain count engine: no geometric sampler, no lockstep.
  TrialExecutor count(protocol, EngineKind::kCount, isa::Dispatch::kBytecode,
                      uniform, 1, /*batch=*/8);
  EXPECT_EQ(count.batch_width(), 1u);
  // Non-default scenario: per-agent fallback, no lockstep.
  sched::Scenario ring;
  ring.scheduler = sched::parse_scheduler("ring");
  TrialExecutor stressed(protocol, EngineKind::kCountNullSkip,
                         isa::Dispatch::kBytecode, ring, 1, /*batch=*/8);
  EXPECT_TRUE(stressed.per_agent());
  EXPECT_EQ(stressed.batch_width(), 1u);
  // batch = 0 resolves to the host's preferred width, never to zero lanes.
  TrialExecutor automatic(protocol, EngineKind::kCountNullSkip,
                          isa::Dispatch::kBytecode, uniform, 1, /*batch=*/0);
  EXPECT_EQ(automatic.batch_width(), simd::preferred_width());
  EXPECT_GE(automatic.batch_width(), 1u);
}

TEST(Ensemble, StatsIndependentOfBatchWidthAndThreads) {
  // run_ensemble routes width > 1 through the chunked fleet; every
  // aggregate must match the scalar fleet at any (width, threads) pair.
  const pp::Protocol flock = baselines::make_flock_of_birds(3);
  const pp::Config initial = baselines::flock_initial(flock, 10);
  EnsembleOptions options;
  options.trials = 21;
  options.master_seed = 7;
  options.sim.stable_window = 1'000;
  options.sim.max_interactions = 1'000'000;

  options.batch = 1;
  options.threads = 1;
  const EnsembleStats reference = run_ensemble(flock, initial, options);
  for (const std::uint32_t batch : {0u, 2u, 8u, 16u}) {
    for (const unsigned threads : {1u, 3u}) {
      options.batch = batch;
      options.threads = threads;
      const EnsembleStats stats = run_ensemble(flock, initial, options);
      const std::string label =
          "batch=" + std::to_string(batch) + " threads=" +
          std::to_string(threads);
      EXPECT_EQ(stats.trials, reference.trials) << label;
      EXPECT_EQ(stats.stabilised, reference.stabilised) << label;
      EXPECT_EQ(stats.accepted, reference.accepted) << label;
      EXPECT_EQ(stats.interactions.p50, reference.interactions.p50) << label;
      EXPECT_EQ(stats.interactions.p90, reference.interactions.p90) << label;
      EXPECT_EQ(stats.interactions.max, reference.interactions.max) << label;
      EXPECT_EQ(stats.parallel_time.p50, reference.parallel_time.p50)
          << label;
      EXPECT_EQ(stats.parallel_time.max, reference.parallel_time.max)
          << label;
      EXPECT_EQ(stats.totals.meetings, reference.totals.meetings) << label;
      EXPECT_EQ(stats.totals.firings, reference.totals.firings) << label;
      EXPECT_EQ(stats.totals.null_skip_batches,
                reference.totals.null_skip_batches)
          << label;
      EXPECT_EQ(stats.totals.skipped_meetings,
                reference.totals.skipped_meetings)
          << label;
      EXPECT_EQ(stats.totals.consensus_flips,
                reference.totals.consensus_flips)
          << label;
      EXPECT_EQ(stats.totals.weight_updates, reference.totals.weight_updates)
          << label;
      EXPECT_EQ(stats.totals.tree_descents, reference.totals.tree_descents)
          << label;
    }
  }
}

TEST(Ensemble, ChunkedFleetErrorNamesTheChunksFirstTrial) {
  try {
    run_trial_range_chunked(
        0, 16, 2, 4,
        [](unsigned, std::uint64_t first, std::uint64_t count,
           TrialResult* out) {
          if (first == 8) throw std::runtime_error("boom");
          for (std::uint64_t i = 0; i < count; ++i) out[i] = {};
        });
    FAIL() << "chunked fleet swallowed the exception";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("trial 8"), std::string::npos) << what;
    EXPECT_NE(what.find("boom"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace ppde::engine
