// Tests for population machines (Section 7.1) and the program-to-machine
// lowering (Section 7.2 / Appendix B.2, Proposition 14). The semantic
// anchor: the lowered machine must decide exactly the predicate the source
// program decides, verified exhaustively via bottom-SCC analysis.
#include <gtest/gtest.h>

#include <cstdint>

#include "compile/lower.hpp"
#include "czerner/construction.hpp"
#include "machine/interp.hpp"
#include "machine/machine.hpp"
#include "progmodel/explore.hpp"
#include "progmodel/flat.hpp"
#include "progmodel/sample_programs.hpp"

namespace ppde::compile {
namespace {

using machine::Instr;
using machine::Machine;
using machine::MachineDecision;
using machine::MachineRunner;
using machine::MachineRunOptions;

// -- structural: Figure 3 ------------------------------------------------------

TEST(Lowering, Figure3Shape) {
  // while detect x > 0 { x -> y; swap x, y } lowers to: detect, branch,
  // move, three register-map assignments, loop jump — then Main's return.
  const LoweredMachine lowered =
      lower_program(progmodel::make_figure3_program());
  const Machine& m = lowered.machine;
  m.validate();

  const std::uint32_t entry = lowered.proc_entry[0];
  ASSERT_LT(entry + 6, m.instrs.size());
  EXPECT_EQ(m.instrs[entry].kind, Instr::Kind::kDetect);
  EXPECT_EQ(m.instrs[entry + 1].kind, Instr::Kind::kAssign);  // IP := f(CF)
  EXPECT_EQ(m.instrs[entry + 1].target, m.ip);
  EXPECT_EQ(m.instrs[entry + 2].kind, Instr::Kind::kMove);
  // Figure 3 lines 5-7: V# := V_x; V_x := V_y; V_y := V#.
  EXPECT_EQ(m.instrs[entry + 3].target, m.v_square);
  EXPECT_EQ(m.instrs[entry + 3].source, m.v_reg[0]);
  EXPECT_EQ(m.instrs[entry + 4].target, m.v_reg[0]);
  EXPECT_EQ(m.instrs[entry + 4].source, m.v_reg[1]);
  EXPECT_EQ(m.instrs[entry + 5].target, m.v_reg[1]);
  EXPECT_EQ(m.instrs[entry + 5].source, m.v_square);
  // Loop jump back to the detect.
  EXPECT_EQ(m.instrs[entry + 6].target, m.ip);
  for (const auto& [from, to] : m.instrs[entry + 6].mapping)
    EXPECT_EQ(to, entry) << "(from " << from << ")";
}

TEST(Lowering, PrologueCallsMainThenLoops) {
  const LoweredMachine lowered =
      lower_program(progmodel::make_figure3_program());
  const Machine& m = lowered.machine;
  // Instruction 1: Main's return pointer := 2 (the loop); instruction 2:
  // IP := Main entry; instruction 3: self-loop.
  EXPECT_EQ(m.instrs[0].kind, Instr::Kind::kAssign);
  EXPECT_EQ(m.instrs[0].target, lowered.proc_pointer[0]);
  EXPECT_EQ(m.instrs[1].target, m.ip);
  for (const auto& [from, to] : m.instrs[1].mapping)
    EXPECT_EQ(to, lowered.proc_entry[0]) << from;
  EXPECT_EQ(m.instrs[2].target, m.ip);
  for (const auto& [from, to] : m.instrs[2].mapping) EXPECT_EQ(to, 2u) << from;
}

TEST(Lowering, SwapSizeBoundsRegisterMapDomains) {
  // Proposition 14: sum |F_{V_x}| is O(swap-size). A component of c mutually
  // swappable registers contributes c^2 domain entries against a swap-size
  // of c(c-1), so the ratio is at most 2.
  const progmodel::Program program = progmodel::make_figure1_program();
  const LoweredMachine lowered = lower_program(program);
  const Machine& m = lowered.machine;
  std::uint64_t map_domains = 0;
  for (machine::PtrId v : m.v_reg)
    if (m.pointers[v].domain.size() > 1)
      map_domains += m.pointers[v].domain.size();
  const std::uint64_t swap_size = program.size().swap_size;
  EXPECT_GE(map_domains, swap_size);
  EXPECT_LE(map_domains, 2 * swap_size);
}

TEST(Lowering, ProcedurePointerDomainsMatchCallSites) {
  // Figure 6: F_P holds one return address per call site of P.
  const progmodel::Program program = progmodel::make_figure1_program();
  const LoweredMachine lowered = lower_program(program);
  const Machine& m = lowered.machine;
  // Clean is called from three while-loops in Main.
  for (progmodel::ProcId proc = 0; proc < program.procedures.size(); ++proc) {
    if (program.procedures[proc].name == "Clean") {
      EXPECT_EQ(m.pointers[lowered.proc_pointer[proc]].domain.size(), 3u);
    }
    if (program.procedures[proc].name == "Test(4)") {
      EXPECT_EQ(m.pointers[lowered.proc_pointer[proc]].domain.size(), 1u);
    }
  }
}

TEST(Lowering, RestartHelperOnlyWhenNeeded) {
  EXPECT_TRUE(lower_program(progmodel::make_figure1_program())
                  .restart_helper_entry.has_value());
  EXPECT_FALSE(lower_program(progmodel::make_threshold_program(3))
                   .restart_helper_entry.has_value());
  EXPECT_FALSE(lower_program(progmodel::make_figure3_program())
                   .restart_helper_entry.has_value());
}

TEST(Lowering, SizeIsLinearInProgramSize) {
  // Proposition 14 on the construction: machine size grows linearly in n.
  const auto size_of = [](int n) {
    return lower_program(czerner::build_construction(n).program)
        .machine.size();
  };
  const std::uint64_t s2 = size_of(2), s3 = size_of(3), s4 = size_of(4),
                      s5 = size_of(5);
  EXPECT_EQ(s4 - s3, s5 - s4);
  EXPECT_GT(s3 - s2, 0u);
  // |F_IP| = L dominates: total size stays within a small factor of L.
  const Machine m = lower_program(czerner::build_construction(3).program)
                        .machine;
  EXPECT_LT(m.size(), 5 * m.num_instructions());
}

TEST(Lowering, MachineValidates) {
  for (int n = 1; n <= 4; ++n) {
    const LoweredMachine lowered =
        lower_program(czerner::build_construction(n).program);
    EXPECT_NO_THROW(lowered.machine.validate()) << "n=" << n;
  }
}

// -- machine model sanity -------------------------------------------------------

TEST(Machine, ValidateCatchesBadDomains) {
  Machine m = lower_program(progmodel::make_figure3_program()).machine;
  m.pointers[m.of].domain = {0};  // break the boolean requirement
  EXPECT_THROW(m.validate(), std::logic_error);
}

TEST(Machine, ValidateCatchesNonCoveringMap) {
  Machine m = lower_program(progmodel::make_figure3_program()).machine;
  for (Instr& instr : m.instrs)
    if (instr.kind == Instr::Kind::kAssign) {
      instr.mapping.pop_back();
      break;
    }
  EXPECT_THROW(m.validate(), std::logic_error);
}

TEST(Machine, ToStringListsInstructions) {
  const Machine m = lower_program(progmodel::make_figure3_program()).machine;
  const std::string text = m.to_string();
  EXPECT_NE(text.find("x -> y"), std::string::npos);
  EXPECT_NE(text.find("detect x > 0"), std::string::npos);
  EXPECT_NE(text.find("IP := f(CF)"), std::string::npos);
}

// -- semantic equivalence: program vs lowered machine ----------------------------

class WindowEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WindowEquivalence, MachineDecidesFigure1Predicate) {
  const std::uint64_t m_total = GetParam();
  const LoweredMachine lowered =
      lower_program(progmodel::make_figure1_program());
  machine::MachineExploreLimits limits;
  limits.max_nodes = 4'000'000;
  const MachineDecision decision =
      machine::decide_machine(lowered.machine, {0, 0, m_total}, limits);
  ASSERT_TRUE(decision.stabilises()) << "m=" << m_total;
  EXPECT_EQ(decision.output(), m_total >= 4 && m_total < 7) << "m=" << m_total;
}

INSTANTIATE_TEST_SUITE_P(Inputs, WindowEquivalence,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8));

TEST(Equivalence, ThresholdProgramMachineAgrees) {
  const LoweredMachine lowered =
      lower_program(progmodel::make_threshold_program(3));
  for (std::uint64_t total = 0; total <= 5; ++total) {
    const MachineDecision decision =
        machine::decide_machine(lowered.machine, {total, 0});
    ASSERT_TRUE(decision.stabilises()) << total;
    EXPECT_EQ(decision.output(), total >= 3) << total;
  }
}

TEST(Equivalence, AdversarialInitialDistributions) {
  // The machine's initial configuration fixes pointers but not registers:
  // every register split of the total must produce the same verdict.
  const LoweredMachine lowered =
      lower_program(progmodel::make_figure1_program());
  for (const auto& split : progmodel::all_compositions(5, 3)) {
    const MachineDecision decision =
        machine::decide_machine(lowered.machine, split);
    ASSERT_TRUE(decision.stabilises());
    EXPECT_TRUE(decision.output()) << "m=5 must be accepted";
  }
}

TEST(Equivalence, CzernerN1MachineDecidesThreshold2) {
  // Theorem 3 + Proposition 14 for n=1: the lowered machine decides m >= 2.
  const LoweredMachine lowered =
      lower_program(czerner::build_construction(1).program);
  machine::MachineExploreLimits limits;
  limits.max_nodes = 6'000'000;
  for (std::uint64_t total = 0; total <= 4; ++total) {
    const MachineDecision decision =
        machine::decide_machine(lowered.machine, {0, 0, 0, 0, total}, limits);
    ASSERT_TRUE(decision.stabilises()) << "m=" << total;
    EXPECT_EQ(decision.output(), total >= 2) << "m=" << total;
  }
}

// -- randomized runner -----------------------------------------------------------

class MachineRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MachineRandom, RunnerAgreesWithPredicate) {
  const std::uint64_t total = GetParam();
  const LoweredMachine lowered =
      lower_program(progmodel::make_figure1_program());
  MachineRunner runner(
      lowered.machine,
      machine::initial_state(lowered.machine, {total, 0, 0}),
      /*seed=*/31 + total);
  MachineRunOptions options;
  options.stable_window = 300'000;
  options.max_steps = 100'000'000;
  const auto result = runner.run(options);
  ASSERT_TRUE(result.stabilised) << "m=" << total;
  EXPECT_FALSE(result.hung) << "m=" << total;
  EXPECT_EQ(result.output, total >= 4 && total < 7) << "m=" << total;
}

INSTANTIATE_TEST_SUITE_P(Inputs, MachineRandom,
                         ::testing::Values(0, 2, 4, 5, 6, 7, 10));

TEST(MachineRunnerTest, CzernerN1RandomizedAboveExhaustiveRange) {
  // n=1 (k=2) for populations beyond exhaustive reach. (n=2 randomized runs
  // are practical only at *program* level, where a restart is a single
  // step: the construction must nondeterministically land on an exact good
  // configuration, which at machine level costs millions of shuffle steps —
  // see bench_restart_dynamics and the paper's remark that optimising the
  // running time is out of scope.)
  const LoweredMachine lowered =
      lower_program(czerner::build_construction(1).program);
  for (std::uint64_t total : {1ull, 2ull, 8ull}) {
    std::vector<std::uint64_t> regs(5, 0);
    regs[4] = total;  // everything in R
    MachineRunner runner(lowered.machine,
                         machine::initial_state(lowered.machine, regs),
                         /*seed=*/7 + total);
    MachineRunOptions options;
    options.stable_window = 2'000'000;
    options.max_steps = 200'000'000;
    const auto result = runner.run(options);
    ASSERT_TRUE(result.stabilised) << "m=" << total;
    EXPECT_EQ(result.output, total >= 2) << "m=" << total;
  }
}

}  // namespace
}  // namespace ppde::compile
