// Tests for the population protocol core: Protocol, Config, Simulator, and
// the exact fair-run Verifier (Section 3 semantics).
#include <gtest/gtest.h>

#include "baselines/majority.hpp"
#include "pp/config.hpp"
#include "pp/protocol.hpp"
#include "pp/simulator.hpp"
#include "pp/verifier.hpp"

namespace ppde::pp {
namespace {

Protocol make_two_state_epidemic() {
  // (sick, healthy -> sick, sick): classic one-way epidemic; accepting=sick.
  Protocol protocol;
  const State sick = protocol.add_state("sick");
  const State healthy = protocol.add_state("healthy");
  protocol.mark_input(healthy);
  protocol.mark_accepting(sick);
  protocol.add_transition(sick, healthy, sick, sick);
  protocol.finalize();
  return protocol;
}

TEST(Protocol, StateNamesRoundTrip) {
  Protocol protocol;
  const State a = protocol.add_state("a");
  const State b = protocol.add_state("b");
  EXPECT_EQ(protocol.state("a"), a);
  EXPECT_EQ(protocol.state("b"), b);
  EXPECT_EQ(protocol.name(a), "a");
  EXPECT_THROW(protocol.state("c"), std::out_of_range);
  EXPECT_FALSE(protocol.find_state("c").has_value());
}

TEST(Protocol, DuplicateStateNameThrows) {
  Protocol protocol;
  protocol.add_state("a");
  EXPECT_THROW(protocol.add_state("a"), std::invalid_argument);
}

TEST(Protocol, TransitionIndexFindsApplicable) {
  Protocol protocol = make_two_state_epidemic();
  const State sick = protocol.state("sick");
  const State healthy = protocol.state("healthy");
  EXPECT_EQ(protocol.transitions_for(sick, healthy).size(), 1u);
  EXPECT_TRUE(protocol.transitions_for(healthy, sick).empty());
  EXPECT_TRUE(protocol.transitions_for(healthy, healthy).empty());
}

TEST(Protocol, SilentTransitionsAreDroppedFromIndex) {
  Protocol protocol;
  const State a = protocol.add_state("a");
  protocol.add_transition(a, a, a, a);
  protocol.finalize();
  EXPECT_TRUE(protocol.transitions_for(a, a).empty());
}

TEST(Protocol, MutationAfterFinalizeThrows) {
  Protocol protocol = make_two_state_epidemic();
  EXPECT_THROW(protocol.add_state("x"), std::logic_error);
  EXPECT_THROW(protocol.add_transition(0, 0, 0, 0), std::logic_error);
  EXPECT_THROW(protocol.finalize(), std::logic_error);
}

TEST(Protocol, TransitionWithUnknownStateThrows) {
  Protocol protocol;
  protocol.add_state("a");
  EXPECT_THROW(protocol.add_transition(0, 1, 0, 0), std::out_of_range);
}

TEST(Config, AddRemoveTotals) {
  Config config(3);
  config.add(0, 2);
  config.add(2, 1);
  EXPECT_EQ(config.total(), 3u);
  EXPECT_EQ(config[0], 2u);
  config.remove(0);
  EXPECT_EQ(config.total(), 2u);
  EXPECT_THROW(config.remove(1), std::underflow_error);
}

TEST(Config, OutputClassification) {
  Protocol protocol = make_two_state_epidemic();
  Config all_sick = Config::single(2, protocol.state("sick"), 3);
  Config all_healthy = Config::single(2, protocol.state("healthy"), 3);
  Config mixed = all_sick;
  mixed.add(protocol.state("healthy"), 1);
  EXPECT_EQ(all_sick.output(protocol), Config::Output::kTrue);
  EXPECT_EQ(all_healthy.output(protocol), Config::Output::kFalse);
  EXPECT_EQ(mixed.output(protocol), Config::Output::kUndefined);
}

TEST(Config, ApplyTransitionConservesAgents) {
  Protocol protocol = make_two_state_epidemic();
  Config config(2);
  config.add(protocol.state("sick"), 1);
  config.add(protocol.state("healthy"), 4);
  config.apply(protocol.transitions()[0]);
  EXPECT_EQ(config.total(), 5u);
  EXPECT_EQ(config[protocol.state("sick")], 2u);
}

TEST(Config, HashAndEquality) {
  Config a(4), b(4);
  a.add(1, 2);
  b.add(1, 2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.add(2, 1);
  EXPECT_NE(a, b);
}

TEST(Simulator, EpidemicInfectsEveryone) {
  Protocol protocol = make_two_state_epidemic();
  Config initial(2);
  initial.add(protocol.state("sick"), 1);
  initial.add(protocol.state("healthy"), 49);
  Simulator sim(protocol, initial, /*seed=*/7);
  SimulationOptions options;
  options.stable_window = 10'000;
  options.max_interactions = 10'000'000;
  const SimulationResult result = sim.run_until_stable(options);
  ASSERT_TRUE(result.stabilised);
  EXPECT_TRUE(result.output);
  EXPECT_EQ(sim.accepting_agents(), 50u);
}

TEST(Simulator, AgentCountIsConserved) {
  Protocol protocol = make_two_state_epidemic();
  Config initial(2);
  initial.add(protocol.state("sick"), 2);
  initial.add(protocol.state("healthy"), 8);
  Simulator sim(protocol, initial, 3);
  for (int i = 0; i < 1000; ++i) sim.step();
  EXPECT_EQ(sim.config().total(), 10u);
}

TEST(Simulator, NeedsTwoAgents) {
  Protocol protocol = make_two_state_epidemic();
  Config initial = Config::single(2, protocol.state("sick"), 1);
  EXPECT_THROW(Simulator(protocol, initial, 1), std::invalid_argument);
}

TEST(Simulator, DeterministicUnderSeed) {
  Protocol protocol = baselines::make_majority();
  Config initial = baselines::majority_initial(protocol, 6, 5);
  Simulator a(protocol, initial, 42);
  Simulator b(protocol, initial, 42);
  for (int i = 0; i < 500; ++i) {
    a.step();
    b.step();
  }
  EXPECT_EQ(a.config(), b.config());
}

TEST(Verifier, EpidemicStabilisesTrue) {
  Protocol protocol = make_two_state_epidemic();
  Config initial(2);
  initial.add(protocol.state("sick"), 1);
  initial.add(protocol.state("healthy"), 5);
  const VerificationResult result = Verifier(protocol).verify(initial);
  EXPECT_EQ(result.verdict, VerificationResult::Verdict::kStabilisesTrue);
  // The epidemic is a DAG of configurations: 6 reachable configs, one BSCC.
  EXPECT_EQ(result.explored_configs, 6u);
  EXPECT_EQ(result.num_bottom_sccs, 1u);
}

TEST(Verifier, AllHealthyStaysFalse) {
  Protocol protocol = make_two_state_epidemic();
  Config initial = Config::single(2, protocol.state("healthy"), 5);
  const VerificationResult result = Verifier(protocol).verify(initial);
  EXPECT_EQ(result.verdict, VerificationResult::Verdict::kStabilisesFalse);
  EXPECT_EQ(result.explored_configs, 1u);
}

TEST(Verifier, DetectsNonStabilisingProtocol) {
  // a <-> b oscillator: the two-config BSCC has both outputs.
  Protocol protocol;
  const State a = protocol.add_state("a");
  const State b = protocol.add_state("b");
  protocol.mark_accepting(a);
  protocol.add_transition(a, a, b, b);
  protocol.add_transition(b, b, a, a);
  protocol.finalize();
  const VerificationResult result =
      Verifier(protocol).verify(Config::single(2, a, 2));
  EXPECT_EQ(result.verdict, VerificationResult::Verdict::kDoesNotStabilise);
  ASSERT_TRUE(result.counterexample.has_value());
}

TEST(Verifier, MixedOutputBsccDetected) {
  // One agent flips between accepting and rejecting by meeting a catalyst.
  Protocol protocol;
  const State on = protocol.add_state("on");
  const State off = protocol.add_state("off");
  const State cat = protocol.add_state("cat");
  protocol.mark_accepting(on);
  protocol.mark_accepting(cat);
  protocol.add_transition(cat, on, cat, off);
  protocol.add_transition(cat, off, cat, on);
  protocol.finalize();
  Config initial(3);
  initial.add(cat, 1);
  initial.add(on, 1);
  const VerificationResult result = Verifier(protocol).verify(initial);
  EXPECT_EQ(result.verdict, VerificationResult::Verdict::kDoesNotStabilise);
}

TEST(Verifier, ResourceLimitReported) {
  Protocol protocol = baselines::make_majority();
  Config initial = baselines::majority_initial(protocol, 30, 30);
  VerifierOptions options;
  options.max_configs = 10;
  const VerificationResult result = Verifier(protocol).verify(initial, options);
  EXPECT_EQ(result.verdict, VerificationResult::Verdict::kResourceLimit);
}

TEST(Verifier, AgreesWithSimulatorOnMajority) {
  Protocol protocol = baselines::make_majority();
  for (std::uint32_t x = 0; x <= 4; ++x) {
    for (std::uint32_t y = 0; y <= 4; ++y) {
      if (x + y < 2) continue;
      Config initial = baselines::majority_initial(protocol, x, y);
      const VerificationResult exact = Verifier(protocol).verify(initial);
      ASSERT_TRUE(exact.stabilises()) << "x=" << x << " y=" << y;
      EXPECT_EQ(exact.output(), x > y) << "x=" << x << " y=" << y;

      Simulator sim(protocol, initial, 1000 + x * 10 + y);
      SimulationOptions options;
      options.stable_window = 20'000;
      const SimulationResult sim_result = sim.run_until_stable(options);
      ASSERT_TRUE(sim_result.stabilised);
      EXPECT_EQ(sim_result.output, exact.output()) << "x=" << x << " y=" << y;
    }
  }
}

}  // namespace
}  // namespace ppde::pp
