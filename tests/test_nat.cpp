// Unit + property tests for the Nat bignum substrate, including a
// differential suite against GMP (used only here, as an oracle).
#include "bignum/nat.hpp"

#include <gmpxx.h>
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace ppde::bignum {
namespace {

TEST(Nat, DefaultIsZero) {
  Nat zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.to_u64(), 0u);
  EXPECT_EQ(zero.to_decimal(), "0");
  EXPECT_EQ(zero.bit_length(), 0u);
}

TEST(Nat, SmallValues) {
  Nat seven{7};
  EXPECT_FALSE(seven.is_zero());
  EXPECT_EQ(seven.to_u64(), 7u);
  EXPECT_EQ(seven.bit_length(), 3u);
  EXPECT_EQ(seven.to_decimal(), "7");
}

TEST(Nat, AdditionCarriesAcrossLimbs) {
  Nat max64{0xffffffffffffffffULL};
  Nat one{1};
  Nat sum = max64 + one;
  EXPECT_EQ(sum.to_decimal(), "18446744073709551616");
  EXPECT_EQ(sum.bit_length(), 65u);
  EXPECT_FALSE(sum.fits_u64());
}

TEST(Nat, SubtractionBorrowsAcrossLimbs) {
  Nat big = Nat::pow2(128);
  Nat result = big - Nat{1};
  EXPECT_EQ(result.bit_length(), 128u);
  EXPECT_EQ(result + Nat{1}, big);
}

TEST(Nat, SubtractionUnderflowThrows) {
  EXPECT_THROW(Nat{3} - Nat{4}, std::underflow_error);
}

TEST(Nat, MultiplicationSchoolbook) {
  Nat a = Nat::from_decimal("123456789123456789123456789");
  Nat b = Nat::from_decimal("987654321987654321");
  EXPECT_EQ((a * b).to_decimal(),
            "121932631356500531469135800347203169112635269");
}

TEST(Nat, MultiplicationByZero) {
  Nat a = Nat::from_decimal("999999999999999999999999");
  EXPECT_TRUE((a * Nat{}).is_zero());
  EXPECT_TRUE((Nat{} * a).is_zero());
}

TEST(Nat, Pow2MatchesShift) {
  for (std::uint64_t e : {0u, 1u, 63u, 64u, 65u, 127u, 200u}) {
    EXPECT_EQ(Nat::pow2(e), Nat{1}.shifted_left(e)) << "exponent " << e;
    EXPECT_EQ(Nat::pow2(e).bit_length(), e + 1);
  }
}

TEST(Nat, PowSquaring) {
  EXPECT_EQ(Nat{2}.pow(10).to_u64(), 1024u);
  EXPECT_EQ(Nat{3}.pow(0).to_u64(), 1u);
  EXPECT_EQ(Nat{0}.pow(0).to_u64(), 1u);  // convention
  EXPECT_EQ(Nat{0}.pow(5).to_u64(), 0u);
  EXPECT_EQ(Nat{10}.pow(30).to_decimal(),
            "1000000000000000000000000000000");
}

TEST(Nat, DivModSmallDivisor) {
  Nat a = Nat::from_decimal("1000000000000000000000000000007");
  auto [q, r] = Nat::divmod(a, Nat{13});
  EXPECT_EQ(q * Nat{13} + r, a);
  EXPECT_LT(r, Nat{13});
}

TEST(Nat, DivModLargeDivisor) {
  Nat a = Nat::pow2(200) + Nat::from_decimal("987654321");
  Nat b = Nat::pow2(100) + Nat{12345};
  auto [q, r] = Nat::divmod(a, b);
  EXPECT_EQ(q * b + r, a);
  EXPECT_LT(r, b);
}

TEST(Nat, DivisionByZeroThrows) {
  EXPECT_THROW(Nat{1} / Nat{}, std::domain_error);
}

TEST(Nat, OrderingIsTotal) {
  std::vector<Nat> ordered = {Nat{}, Nat{1}, Nat{2}, Nat{0xffffffffffffffffULL},
                              Nat::pow2(64), Nat::pow2(100)};
  for (std::size_t i = 0; i < ordered.size(); ++i)
    for (std::size_t j = 0; j < ordered.size(); ++j) {
      EXPECT_EQ(ordered[i] < ordered[j], i < j);
      EXPECT_EQ(ordered[i] == ordered[j], i == j);
    }
}

TEST(Nat, DecimalRoundTrip) {
  for (const char* text :
       {"0", "1", "10", "18446744073709551615", "18446744073709551616",
        "340282366920938463463374607431768211456",
        "10000000000000000000000000000000000000000000000001"}) {
    EXPECT_EQ(Nat::from_decimal(text).to_decimal(), text);
  }
}

TEST(Nat, FromDecimalRejectsGarbage) {
  EXPECT_THROW(Nat::from_decimal(""), std::invalid_argument);
  EXPECT_THROW(Nat::from_decimal("12a"), std::invalid_argument);
  EXPECT_THROW(Nat::from_decimal("-1"), std::invalid_argument);
}

TEST(Nat, Log2Accuracy) {
  EXPECT_DOUBLE_EQ(Nat{1}.log2(), 0.0);
  EXPECT_DOUBLE_EQ(Nat{2}.log2(), 1.0);
  EXPECT_NEAR(Nat::pow2(1000).log2(), 1000.0, 1e-9);
  EXPECT_NEAR((Nat::pow2(100) + Nat::pow2(99)).log2(), 100.5849625007, 1e-6);
  EXPECT_THROW(Nat{}.log2(), std::domain_error);
}

TEST(Nat, ToDoubleLargeIsFinite) {
  EXPECT_DOUBLE_EQ(Nat{12345}.to_double(), 12345.0);
  EXPECT_GT(Nat::pow2(500).to_double(), 1e150);
}

TEST(Nat, HashDistinguishesValues) {
  EXPECT_NE(Nat{1}.hash(), Nat{2}.hash());
  EXPECT_EQ(Nat{42}.hash(), Nat{42}.hash());
}

// -- Differential property tests against GMP --------------------------------

class NatVsGmp : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static Nat random_nat(support::Rng& rng, int max_limbs, mpz_class* mirror) {
    const int limbs = static_cast<int>(rng.below(max_limbs)) + 1;
    Nat value;
    mpz_class gmp = 0;
    for (int i = 0; i < limbs; ++i) {
      const std::uint64_t limb = rng();
      value = value.shifted_left(64) + Nat{limb};
      gmp <<= 64;
      gmp += mpz_class(mpz_class(static_cast<unsigned long>(limb >> 32)) << 32) +
             static_cast<unsigned long>(limb & 0xffffffffu);
    }
    *mirror = gmp;
    return value;
  }

  static std::string gmp_str(const mpz_class& value) {
    return value.get_str();
  }
};

TEST_P(NatVsGmp, ArithmeticAgreesWithGmp) {
  support::Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    mpz_class ga, gb;
    Nat a = random_nat(rng, 5, &ga);
    Nat b = random_nat(rng, 5, &gb);
    ASSERT_EQ(a.to_decimal(), gmp_str(ga));
    ASSERT_EQ(b.to_decimal(), gmp_str(gb));

    EXPECT_EQ((a + b).to_decimal(), gmp_str(ga + gb));
    EXPECT_EQ((a * b).to_decimal(), gmp_str(ga * gb));
    if (a >= b)
      EXPECT_EQ((a - b).to_decimal(), gmp_str(ga - gb));
    else
      EXPECT_EQ((b - a).to_decimal(), gmp_str(gb - ga));

    if (!b.is_zero()) {
      auto [q, r] = Nat::divmod(a, b);
      EXPECT_EQ(q.to_decimal(), gmp_str(ga / gb));
      EXPECT_EQ(r.to_decimal(), gmp_str(ga % gb));
    }

    EXPECT_EQ(a < b, ga < gb);
    EXPECT_EQ(a == b, ga == gb);

    const std::uint64_t shift = rng.below(130);
    mpz_class shifted = ga << static_cast<unsigned long>(shift);
    EXPECT_EQ(a.shifted_left(shift).to_decimal(), gmp_str(shifted));

    EXPECT_EQ(a.bit_length(),
              ga == 0 ? 0u : mpz_sizeinbase(ga.get_mpz_t(), 2));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NatVsGmp,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace ppde::bignum
