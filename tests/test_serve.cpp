// Tests for the serve subsystem (DESIGN.md S25): wire framing and the
// recursive-descent JSON parser, bit-exact snapshot/restore of the SPRT
// and P² estimators, the resumable certification fold (FoldState) and its
// reorder-buffer wrapper (StreamingMerger) differentially against
// certify_trials under many shard layouts, the worker batch protocol over
// a real socketpair, the end-to-end daemon against in-process
// smc::certify (byte-identical certificate digest, including after a
// killed-worker trial reassignment), and the SIGINT/SIGTERM watcher.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "bignum/nat.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "compile/lower.hpp"
#include "compile/to_protocol.hpp"
#include "czerner/construction.hpp"
#include "engine/ensemble.hpp"
#include "serve/client.hpp"
#include "serve/proto.hpp"
#include "serve/server.hpp"
#include "serve/signals.hpp"
#include "serve/wire.hpp"
#include "serve/worker.hpp"
#include "smc/certify.hpp"
#include "smc/json.hpp"
#include "smc/partial.hpp"

namespace ppde::serve {
namespace {

// ---------------------------------------------------------------------------
// Wire: JSON parser.

TEST(Json, ParsesScalarsExactly) {
  const Json json = Json::parse(
      R"({"a":18446744073709551615,"b":-2.5,"c":"hi \"x\"\n","d":true,)"
      R"("e":null,"f":"00ff00000000002a"})");
  EXPECT_EQ(json.u64("a", 0), 18446744073709551615ull);  // > 2^53: exact
  EXPECT_DOUBLE_EQ(json.dbl("b", 0.0), -2.5);
  EXPECT_EQ(json.str("c", ""), "hi \"x\"\n");
  EXPECT_TRUE(json.boolean("d", false));
  ASSERT_NE(json.find("e"), nullptr);
  EXPECT_EQ(json.find("g"), nullptr);
  EXPECT_EQ(json.find("f")->as_hex_u64(), 0x00ff00000000002aull);
}

TEST(Json, ParsesNestedArraysAndObjects) {
  const Json json = Json::parse(R"({"r":[[1,2],[3],{"k":[4]}]})");
  const Json* r = json.find("r");
  ASSERT_NE(r, nullptr);
  ASSERT_EQ(r->items().size(), 3u);
  EXPECT_EQ(r->items()[0].items()[1].as_u64(), 2u);
  EXPECT_EQ(r->items()[2].find("k")->items()[0].as_u64(), 4u);
}

TEST(Json, ParsesUnicodeEscapes) {
  const Json json = Json::parse(R"({"s":"Aé"})");
  EXPECT_EQ(json.str("s", ""), "A\xc3\xa9");
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse(R"({"a":1} trailing)"), std::runtime_error);
  EXPECT_THROW(Json::parse(R"({"a":})"), std::runtime_error);
  EXPECT_THROW(Json::parse(""), std::runtime_error);
  EXPECT_THROW(Json::parse(R"({"a":truth})"), std::runtime_error);
}

TEST(Json, RoundTripsWriterOutput) {
  smc::JsonWriter writer;
  writer.field("n", std::uint64_t{12345678901234567ull});
  writer.field("x", 0.125);
  writer.field("s", std::string_view("a\\b\"c"));
  writer.hex_field("h", 0xdeadbeefull);
  const Json json = Json::parse(writer.finish());
  EXPECT_EQ(json.u64("n", 0), 12345678901234567ull);
  EXPECT_DOUBLE_EQ(json.dbl("x", 0.0), 0.125);
  EXPECT_EQ(json.str("s", ""), "a\\b\"c");
  EXPECT_EQ(json.find("h")->as_hex_u64(), 0xdeadbeefull);
}

// ---------------------------------------------------------------------------
// Wire: framing.

TEST(Wire, FramesRoundTripOverSocketpair) {
  int pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  const std::string message = R"({"op":"batch","count":3})";
  write_frame(pair[0], message);
  write_frame(pair[0], "");  // empty payload is legal
  std::string out;
  ASSERT_TRUE(read_frame(pair[1], out));
  EXPECT_EQ(out, message);
  ASSERT_TRUE(read_frame(pair[1], out));
  EXPECT_EQ(out, "");
  ::close(pair[0]);
  EXPECT_FALSE(read_frame(pair[1], out));  // clean EOF, not an error
  ::close(pair[1]);
}

TEST(Wire, RejectsOversizedFrames) {
  int pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  // Hand-build a header claiming a payload beyond the cap.
  const unsigned char header[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::write(pair[0], header, 4), 4);
  std::string out;
  EXPECT_THROW(read_frame(pair[1], out), std::runtime_error);
  ::close(pair[0]);
  ::close(pair[1]);
}

// ---------------------------------------------------------------------------
// SMC partial state: snapshot/restore and the canonical fold.

TEST(PartialState, P2SnapshotResumesByteIdentically) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> dist(0.0, 100.0);
  std::vector<double> stream(500);
  for (double& value : stream) value = dist(rng);

  for (const std::size_t split : {0ul, 1ul, 3ul, 4ul, 5ul, 17ul, 499ul}) {
    smc::QuantileTails uninterrupted;
    smc::QuantileTails first;
    for (std::size_t i = 0; i < split; ++i) {
      uninterrupted.add(stream[i]);
      first.add(stream[i]);
    }
    smc::QuantileTails resumed;
    resumed.restore(first.snapshot());
    for (std::size_t i = split; i < stream.size(); ++i) {
      uninterrupted.add(stream[i]);
      resumed.add(stream[i]);
    }
    // Bit-exact, not approximately equal: the digest depends on it.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(uninterrupted.p50()),
              std::bit_cast<std::uint64_t>(resumed.p50()))
        << "split " << split;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(uninterrupted.p90()),
              std::bit_cast<std::uint64_t>(resumed.p90()));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(uninterrupted.p99()),
              std::bit_cast<std::uint64_t>(resumed.p99()));
    EXPECT_EQ(uninterrupted.count(), resumed.count());
  }
}

smc::CertifyOptions fold_options() {
  smc::CertifyOptions options;
  options.delta = 0.1;
  options.indifference = 0.3;
  options.alpha = 0.05;
  options.beta = 0.05;
  options.max_trials = 200;
  options.seed = 9;
  return options;
}

/// Deterministic fake outcome: a pure function of (trial, seed) with a
/// mixed success/failure pattern so the SPRT walks around before deciding.
smc::TrialOutcome fake_outcome(std::uint64_t, std::uint64_t seed) {
  smc::TrialOutcome outcome;
  outcome.stabilised = (seed % 17) != 0;
  outcome.success = outcome.stabilised && (seed % 8) != 0;
  outcome.convergence_parallel_time =
      static_cast<double>(seed % 1009) / 7.0;
  outcome.metrics.meetings = seed % 101;
  outcome.metrics.firings = seed % 53;
  return outcome;
}

std::vector<smc::TrialRecord> fake_records(const smc::CertifyOptions& options,
                                           std::uint64_t count) {
  std::vector<smc::TrialRecord> records;
  records.reserve(count);
  for (std::uint64_t trial = 0; trial < count; ++trial)
    records.push_back(smc::make_trial_record(
        trial,
        fake_outcome(trial, engine::derive_trial_seed(options.seed, trial))));
  return records;
}

TEST(PartialState, SprtRestoreContinuesByteIdentically) {
  const smc::CertifyOptions options = fold_options();
  const std::vector<smc::TrialRecord> records =
      fake_records(options, options.max_trials);
  for (const std::size_t split : {0ul, 1ul, 7ul, 20ul}) {
    smc::Sprt uninterrupted(options.sprt());
    for (std::size_t i = 0; i < records.size() && !uninterrupted.decided();
         ++i)
      uninterrupted.update(records[i].success);

    smc::Sprt prefix(options.sprt());
    for (std::size_t i = 0; i < split && !prefix.decided(); ++i)
      prefix.update(records[i].success);
    smc::Sprt resumed(options.sprt());
    resumed.restore(prefix.trials(), prefix.successes(), prefix.llr());
    for (std::size_t i = split; i < records.size() && !resumed.decided();
         ++i)
      resumed.update(records[i].success);

    EXPECT_EQ(resumed.decision(), uninterrupted.decision()) << split;
    EXPECT_EQ(resumed.trials(), uninterrupted.trials());
    EXPECT_EQ(resumed.successes(), uninterrupted.successes());
    EXPECT_EQ(std::bit_cast<std::uint64_t>(resumed.llr()),
              std::bit_cast<std::uint64_t>(uninterrupted.llr()));
  }
}

TEST(PartialState, FoldStateSerializationResumesAtEverySplit) {
  const smc::CertifyOptions options = fold_options();
  const std::vector<smc::TrialRecord> records =
      fake_records(options, options.max_trials);

  smc::FoldState reference(options);
  for (const smc::TrialRecord& record : records) reference.fold(record);
  const std::string reference_payload =
      smc::certificate_payload(reference.finish(options));

  for (std::size_t split = 0; split <= records.size(); split += 13) {
    smc::FoldState before(options);
    for (std::size_t i = 0; i < split; ++i) before.fold(records[i]);
    smc::FoldState after =
        smc::FoldState::deserialize(options, before.serialize());
    for (std::size_t i = split; i < records.size(); ++i)
      after.fold(records[i]);
    EXPECT_EQ(smc::certificate_payload(after.finish(options)),
              reference_payload)
        << "split " << split;
  }
}

TEST(PartialState, FoldStateRejectsMalformedCheckpoints) {
  const smc::CertifyOptions options = fold_options();
  EXPECT_THROW(smc::FoldState::deserialize(options, "not_a_checkpoint"),
               std::runtime_error);
  EXPECT_THROW(smc::FoldState::deserialize(options, "smc_fold_v1 1 2"),
               std::runtime_error);
}

// The tentpole differential: the streaming merge reproduces the
// certify_trials certificate *byte-identically* under any shard layout.
TEST(PartialState, MergerMatchesCertifyTrialsUnderAnyShardLayout) {
  smc::CertifyOptions options = fold_options();
  options.threads = 1;
  options.batch = 8;
  const smc::Certificate reference = smc::certify_trials(
      [](unsigned, std::uint64_t trial, std::uint64_t seed) {
        return fake_outcome(trial, seed);
      },
      options);
  const std::string reference_payload = smc::certificate_payload(reference);
  ASSERT_GT(reference.trials, 0u);

  const std::vector<smc::TrialRecord> records =
      fake_records(options, options.max_trials);

  const auto shards_of = [&](std::uint64_t shard) {
    std::vector<std::pair<std::uint64_t, std::vector<smc::TrialRecord>>>
        shards;
    for (std::uint64_t first = 0; first < records.size(); first += shard) {
      const std::uint64_t count =
          std::min<std::uint64_t>(shard, records.size() - first);
      shards.emplace_back(
          first, std::vector<smc::TrialRecord>(
                     records.begin() + static_cast<std::ptrdiff_t>(first),
                     records.begin() +
                         static_cast<std::ptrdiff_t>(first + count)));
    }
    return shards;
  };

  // In-order delivery at several shard sizes (including one big shard).
  for (const std::uint64_t shard : {1u, 2u, 3u, 5u, 8u, 64u, 200u}) {
    smc::StreamingMerger merger(options);
    for (auto& [first, batch] : shards_of(shard))
      merger.absorb(first, std::move(batch));
    EXPECT_EQ(smc::certificate_payload(merger.finish()), reference_payload)
        << "shard " << shard;
    EXPECT_TRUE(merger.decided());
  }

  // Reverse and shuffled arrival order; duplicated deliveries (a range
  // re-run after a worker death whose original response arrives anyway).
  for (const std::uint64_t shard : {3u, 8u}) {
    auto shards = shards_of(shard);
    std::reverse(shards.begin(), shards.end());
    smc::StreamingMerger reversed(options);
    for (auto& [first, batch] : shards) reversed.absorb(first, batch);
    EXPECT_EQ(smc::certificate_payload(reversed.finish()),
              reference_payload);

    shards = shards_of(shard);
    std::mt19937_64 rng(5);
    std::shuffle(shards.begin(), shards.end(), rng);
    smc::StreamingMerger shuffled(options);
    for (auto& [first, batch] : shards) {
      shuffled.absorb(first, batch);
      if (rng() % 3 == 0) shuffled.absorb(first, batch);  // duplicate
    }
    EXPECT_EQ(smc::certificate_payload(shuffled.finish()),
              reference_payload);
  }
}

TEST(PartialState, MergerRejectsMislabelledRecords) {
  smc::StreamingMerger merger(fold_options());
  std::vector<smc::TrialRecord> records(2);
  records[0].trial = 4;
  records[1].trial = 6;  // not contiguous with first=4
  EXPECT_THROW(merger.absorb(4, records), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Proto: record round-trips.

TEST(Proto, CertifyRecordsRoundTripBitExactly) {
  BatchResult result;
  result.first = 17;
  for (std::uint64_t i = 0; i < 5; ++i) {
    smc::TrialRecord record;
    record.trial = 17 + i;
    record.success = i % 2 == 0;
    record.stabilised = i != 3;
    record.time_bits = std::bit_cast<std::uint64_t>(0.1 * (i + 1));
    record.meetings = 1000 + i;
    record.firings = 500 + i;
    result.records.push_back(record);
  }
  const BatchResult parsed = parse_batch_result(
      Json::parse(encode_batch_result(result, false)), false);
  EXPECT_EQ(parsed.first, result.first);
  ASSERT_EQ(parsed.records.size(), result.records.size());
  for (std::size_t i = 0; i < result.records.size(); ++i)
    EXPECT_EQ(parsed.records[i], result.records[i]) << i;
}

TEST(Proto, EnsembleRecordsRoundTripThroughTrialResults) {
  engine::TrialResult trial;
  trial.sim.stabilised = true;
  trial.sim.output = true;
  trial.sim.interactions = 123456;
  trial.sim.parallel_time = 98.75;
  trial.metrics.meetings = 1;
  trial.metrics.firings = 2;
  trial.metrics.null_skip_batches = 3;
  trial.metrics.skipped_meetings = 4;
  trial.metrics.consensus_flips = 5;
  trial.metrics.weight_updates = 6;
  trial.metrics.tree_descents = 7;

  BatchResult result;
  result.first = 3;
  result.ensemble_records.push_back(make_ensemble_record(3, trial));
  const BatchResult parsed = parse_batch_result(
      Json::parse(encode_batch_result(result, true)), true);
  ASSERT_EQ(parsed.ensemble_records.size(), 1u);
  EXPECT_EQ(parsed.ensemble_records[0], result.ensemble_records[0]);

  const engine::TrialResult back =
      to_trial_result(parsed.ensemble_records[0]);
  EXPECT_EQ(back.sim.interactions, trial.sim.interactions);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.sim.parallel_time),
            std::bit_cast<std::uint64_t>(trial.sim.parallel_time));
  EXPECT_EQ(back.metrics.tree_descents, trial.metrics.tree_descents);
}

TEST(Proto, QueryRoundTripsAndDefaults) {
  QueryParams query;
  query.req = "certify";
  query.n = 1;
  query.extra = 8;
  query.trials = 24;
  query.seed = 7;
  query.delta = 0.1;
  query.indifference = 0.8;
  query.batch = 8;
  const QueryParams parsed = parse_query(Json::parse(encode_query(query)));
  EXPECT_EQ(parsed.req, "certify");
  EXPECT_EQ(parsed.extra, 8u);
  EXPECT_EQ(parsed.trials, 24u);
  EXPECT_DOUBLE_EQ(parsed.indifference, 0.8);
  EXPECT_EQ(parsed.batch, 8u);
  // A minimal request means the same as the CLI's flag defaults.
  const QueryParams defaults =
      parse_query(Json::parse(R"({"req":"certify"})"));
  EXPECT_EQ(defaults.trials, 4096u);
  EXPECT_EQ(defaults.seed, 42u);
  EXPECT_DOUBLE_EQ(defaults.delta, 0.01);
  EXPECT_EQ(defaults.batch, 0u);
  // The auto width is the wire default and therefore omitted (pre-S28
  // servers keep accepting these queries).
  query.batch = 0;
  EXPECT_EQ(encode_query(query).find("\"batch\""), std::string::npos);
  EXPECT_THROW(parse_query(Json::parse(R"({"n":1})")), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Worker process over a real socketpair.

TEST(Worker, BatchRecordsMatchInProcessOutcomes) {
  int pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::close(pair[0]);
    int status = 0;
    try {
      worker_main(pair[1]);
    } catch (...) {
      status = 1;
    }
    ::_exit(status);
  }
  ::close(pair[1]);

  BatchRequest request;
  request.ensemble = false;
  request.n = 1;
  request.extra = 2;
  request.expected = true;
  request.seed = 7;
  request.first = 2;
  request.count = 4;
  request.window = 1'000'000;
  request.budget = 100'000'000;
  // The same range at three lockstep widths (S28): default/auto, forced
  // scalar, and an explicit lane count. Records must be identical — the
  // width steers worker throughput only.
  std::vector<BatchResult> results;
  for (const std::uint32_t batch : {0u, 1u, 4u}) {
    request.batch = batch;
    write_frame(pair[0], encode_batch_request(request));
    std::string payload;
    ASSERT_TRUE(read_frame(pair[0], payload));
    results.push_back(parse_batch_result(Json::parse(payload), false));
  }
  const BatchResult& result = results[0];
  for (std::size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[i].records.size(), result.records.size());
    for (std::size_t j = 0; j < result.records.size(); ++j)
      EXPECT_EQ(results[i].records[j], result.records[j])
          << "width variant " << i << " record " << j;
  }
  write_frame(pair[0], encode_exit());
  int status = 0;
  ::waitpid(pid, &status, 0);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  ::close(pair[0]);

  // Differential: the worker's records are exactly what the in-process
  // shard entry point computes for the same range.
  const auto lowered =
      compile::lower_program(czerner::build_construction(1).program);
  const auto conv = compile::machine_to_protocol(lowered.machine);
  smc::CertifyOptions options;
  options.seed = 7;
  options.sim.stable_window = 1'000'000;
  options.sim.max_interactions = 100'000'000;
  const std::vector<smc::TrialOutcome> outcomes = smc::run_outcome_range(
      conv.protocol, conv.initial_config(conv.num_pointers + 2), true,
      options, 2, 4, 1);
  ASSERT_EQ(result.records.size(), outcomes.size());
  EXPECT_EQ(result.first, 2u);
  for (std::size_t i = 0; i < outcomes.size(); ++i)
    EXPECT_EQ(result.records[i], smc::make_trial_record(2 + i, outcomes[i]))
        << i;
}

// ---------------------------------------------------------------------------
// End-to-end daemon.

struct RunningServer {
  Server server;
  std::thread thread;

  explicit RunningServer(const ServerOptions& options) : server(options) {
    thread = std::thread([this] { server.run(); });
  }
  ~RunningServer() {
    server.request_stop();
    thread.join();
  }
  std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(server.port());
  }
};

QueryParams smoke_query() {
  QueryParams query;
  query.req = "certify";
  query.n = 1;
  query.extra = 2;
  query.trials = 24;
  query.seed = 7;
  query.delta = 0.1;
  query.indifference = 0.8;
  // A small stability window keeps each trial cheap; the differential
  // stays exact because the reference certificate uses the same options.
  query.window = 1'000'000;
  query.budget = 100'000'000;
  return query;
}

/// The in-process certificate for the same workload a daemon query names.
smc::Certificate reference_certificate(const QueryParams& query) {
  const auto lowered =
      compile::lower_program(czerner::build_construction(query.n).program);
  const auto conv = compile::machine_to_protocol(lowered.machine);
  const std::uint64_t m = conv.num_pointers + query.extra;
  const bool expected = bignum::Nat(query.extra) >=
                        czerner::Construction::threshold(query.n);
  smc::CertifyOptions options = certify_options_of(query);
  options.threads = 1;
  return smc::certify(conv.protocol, conv.initial_config(m), expected,
                      options);
}

std::string digest_of(const std::string& json_text) {
  const std::size_t key = json_text.find("\"digest\":\"");
  if (key == std::string::npos) return "";
  const std::size_t start = key + 10;
  const std::size_t end = json_text.find('"', start);
  return json_text.substr(start, end - start);
}

TEST(Server, CertifyMatchesInProcessDigestByteForByte) {
  const QueryParams query = smoke_query();
  const std::string reference = smc::to_jsonl(reference_certificate(query));
  ASSERT_NE(digest_of(reference), "");

  for (const unsigned workers : {1u, 2u, 4u}) {
    ServerOptions options;
    options.port = 0;
    options.workers = workers;
    options.shard = 4;
    RunningServer running(options);
    std::string response;
    std::string error;
    ASSERT_TRUE(
        rpc(running.endpoint(), encode_query(query), &response, &error))
        << error;
    EXPECT_TRUE(Json::parse(response).boolean("ok", false)) << response;
    EXPECT_EQ(digest_of(response), digest_of(reference))
        << "workers " << workers << ": " << response;
  }
}

TEST(Server, KilledWorkerRangeIsReassignedWithSameDigest) {
  const QueryParams query = smoke_query();
  const std::string reference = smc::to_jsonl(reference_certificate(query));

  ServerOptions options;
  options.port = 0;
  options.workers = 2;
  options.shard = 4;
  options.kill_worker_after = 1;  // SIGKILL a worker mid-query
  RunningServer running(options);
  std::string response;
  std::string error;
  ASSERT_TRUE(
      rpc(running.endpoint(), encode_query(query), &response, &error))
      << error;
  EXPECT_TRUE(Json::parse(response).boolean("ok", false)) << response;
  EXPECT_EQ(digest_of(response), digest_of(reference)) << response;
}

TEST(Server, EnsembleSummaryMatchesInProcessStats) {
  QueryParams query;
  query.req = "ensemble";
  query.n = 1;
  query.extra = 2;
  query.trials = 12;
  query.seed = 5;
  query.window = 1'000'000;
  query.budget = 100'000'000;

  ServerOptions options;
  options.port = 0;
  options.workers = 2;
  options.shard = 3;
  RunningServer running(options);
  std::string response;
  std::string error;
  ASSERT_TRUE(
      rpc(running.endpoint(), encode_query(query), &response, &error))
      << error;
  const Json json = Json::parse(response);
  ASSERT_TRUE(json.boolean("ok", false)) << response;
  const Json* summary = json.find("summary");
  ASSERT_NE(summary, nullptr);

  const auto lowered =
      compile::lower_program(czerner::build_construction(1).program);
  const auto conv = compile::machine_to_protocol(lowered.machine);
  engine::EnsembleOptions ensemble;
  ensemble.trials = 12;
  ensemble.threads = 1;
  ensemble.master_seed = 5;
  ensemble.sim.stable_window = query.window;
  ensemble.sim.max_interactions = query.budget;
  const engine::EnsembleStats stats = engine::run_ensemble(
      conv.protocol, conv.initial_config(conv.num_pointers + 2), ensemble);

  EXPECT_EQ(summary->u64("trials", 0), stats.trials);
  EXPECT_EQ(summary->u64("stabilised", 0), stats.stabilised);
  EXPECT_EQ(summary->u64("accepted", 0), stats.accepted);
  EXPECT_EQ(summary->u64("total_meetings", 0), stats.totals.meetings);
  EXPECT_EQ(summary->u64("total_firings", 0), stats.totals.firings);
  EXPECT_DOUBLE_EQ(summary->dbl("interactions_max", 0.0),
                   stats.interactions.max);
  EXPECT_DOUBLE_EQ(summary->dbl("parallel_time_p50", 0.0),
                   stats.parallel_time.p50);
}

TEST(Server, StatsShutdownAndAdmissionControl) {
  ServerOptions options;
  options.port = 0;
  options.workers = 1;
  options.max_trials_cap = 100;
  RunningServer running(options);

  std::string response;
  std::string error;
  ASSERT_TRUE(rpc(running.endpoint(), encode_query(QueryParams{"stats"}),
                  &response, &error))
      << error;
  const Json stats = Json::parse(response);
  EXPECT_TRUE(stats.boolean("ok", false));
  EXPECT_EQ(stats.u64("workers_total", 0), 1u);
  EXPECT_EQ(stats.u64("workers_alive", 0), 1u);
  ASSERT_NE(stats.find("metrics"), nullptr);

  // Over-budget query is rejected at admission, not executed.
  QueryParams over = smoke_query();
  over.trials = 101;
  ASSERT_TRUE(
      rpc(running.endpoint(), encode_query(over), &response, &error));
  EXPECT_FALSE(Json::parse(response).boolean("ok", true)) << response;

  QueryParams shutdown;
  shutdown.req = "shutdown";
  ASSERT_TRUE(
      rpc(running.endpoint(), encode_query(shutdown), &response, &error));
  EXPECT_TRUE(Json::parse(response).boolean("ok", false));
  // ~RunningServer joins run(); a hung shutdown would hang the test.
}

TEST(Server, ConcurrentQueriesShareTheWorkerPool) {
  const QueryParams query = smoke_query();
  const std::string reference = smc::to_jsonl(reference_certificate(query));

  ServerOptions options;
  options.port = 0;
  options.workers = 2;
  options.max_active = 2;
  options.shard = 4;
  RunningServer running(options);

  std::vector<std::string> responses(2);
  std::vector<std::thread> clients;
  for (int i = 0; i < 2; ++i)
    clients.emplace_back([&, i] {
      std::string error;
      rpc(running.endpoint(), encode_query(query), &responses[i], &error);
    });
  for (std::thread& client : clients) client.join();
  for (const std::string& response : responses) {
    ASSERT_FALSE(response.empty());
    EXPECT_TRUE(Json::parse(response).boolean("ok", false)) << response;
    EXPECT_EQ(digest_of(response), digest_of(reference)) << response;
  }
}

// ---------------------------------------------------------------------------
// Distributed observability (S29): the worker's wire sidecar, the daemon's
// roll-up + flight recorder + Prometheus surfaces, and the standing
// invariant that none of it moves a certificate digest.

TEST(Worker, ShipsMetricDeltasAndTraceSidecar) {
  int pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::close(pair[0]);
    int status = 0;
    try {
      worker_main(pair[1]);
    } catch (...) {
      status = 1;
    }
    ::_exit(status);
  }
  ::close(pair[1]);

  BatchRequest request;
  request.ensemble = false;
  request.n = 1;
  request.extra = 2;
  request.expected = true;
  request.seed = 7;
  request.first = 0;
  request.count = 4;
  request.window = 1'000'000;
  request.budget = 100'000'000;

  const auto round_trip = [&](std::uint64_t trace_id) {
    request.trace_id = trace_id;
    write_frame(pair[0], encode_batch_request(request));
    std::string payload;
    EXPECT_TRUE(read_frame(pair[0], payload));
    return parse_batch_result(Json::parse(payload), false);
  };

  const auto delta_of = [](const BatchResult& result,
                           std::string_view name) -> double {
    for (const obs::MetricSnapshot& metric : result.metric_deltas)
      if (metric.name == name) return metric.value;
    return -1.0;
  };

  // Untraced batch: metrics still ship (they are free), spans do not.
  const BatchResult untraced = round_trip(0);
  EXPECT_EQ(untraced.worker_pid, static_cast<std::uint64_t>(pid));
  EXPECT_TRUE(untraced.trace.empty());
  EXPECT_EQ(delta_of(untraced, "serve.trials_executed"), 4.0);

  // Traced batch: the sidecar carries this batch's spans with owned names
  // and the query's trace_id as the worker_batch span argument...
  request.first = 4;
  const BatchResult traced = round_trip(99);
  EXPECT_EQ(traced.worker_pid, static_cast<std::uint64_t>(pid));
  ASSERT_FALSE(traced.trace.empty());
  bool saw_batch_span = false;
  for (const obs::CapturedEvent& event : traced.trace)
    if (event.name == "worker_batch") {
      saw_batch_span = true;
      EXPECT_TRUE(event.has_value);
      EXPECT_EQ(event.value, 99.0);
    }
  EXPECT_TRUE(saw_batch_span);
  // ...and the metric delta covers only this batch, not the running total.
  EXPECT_EQ(delta_of(traced, "serve.trials_executed"), 4.0);

  write_frame(pair[0], encode_exit());
  int status = 0;
  ::waitpid(pid, &status, 0);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  ::close(pair[0]);
}

TEST(Server, StatsRollUpFlightRecorderAndPrometheusSurfaces) {
  QueryParams query;
  query.req = "ensemble";
  query.n = 1;
  query.extra = 2;
  query.trials = 12;
  query.seed = 5;
  query.window = 1'000'000;
  query.budget = 100'000'000;

  ServerOptions options;
  options.port = 0;
  options.workers = 2;
  options.shard = 3;
  options.prom_port = 0;  // ephemeral /metrics listener
  RunningServer running(options);
  ASSERT_NE(running.server.prom_port(), 0);

  // The test process hosts the daemon, and earlier Server tests already
  // fed the process-global registry — so assert the *delta* this query
  // contributes, not absolute totals.
  const auto counter_value = [&](std::string_view name) {
    QueryParams stats_query{"stats"};
    std::string stats_response;
    std::string stats_error;
    EXPECT_TRUE(rpc(running.endpoint(), encode_query(stats_query),
                    &stats_response, &stats_error))
        << stats_error;
    const Json parsed = Json::parse(stats_response);
    const Json* metrics = parsed.find("metrics");
    EXPECT_NE(metrics, nullptr);
    return metrics == nullptr ? 0 : metrics->u64(name, 0);
  };
  const std::uint64_t shipped_before =
      counter_value("worker.serve.trials_executed");
  const std::uint64_t done_before = counter_value("worker.engine.trials_done");
  const std::uint64_t delivered_before =
      counter_value("serve.trials_delivered");

  std::string response;
  std::string error;
  ASSERT_TRUE(
      rpc(running.endpoint(), encode_query(query), &response, &error))
      << error;
  ASSERT_TRUE(Json::parse(response).boolean("ok", false)) << response;

  // Worker metrics rolled up under `worker.` next to the daemon's own:
  // every trial the workers ran is visible fleet-wide, and the admission
  // instruments (queue-depth gauge, wait histogram) saw the query.
  QueryParams stats_query{"stats"};
  ASSERT_TRUE(rpc(running.endpoint(), encode_query(stats_query), &response,
                  &error))
      << error;
  const Json stats = Json::parse(response);
  ASSERT_TRUE(stats.boolean("ok", false)) << response;
  const Json* metrics = stats.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->u64("worker.serve.trials_executed", 0) - shipped_before,
            12u);
  EXPECT_EQ(metrics->u64("worker.engine.trials_done", 0) - done_before, 12u);
  EXPECT_EQ(metrics->u64("serve.trials_delivered", 0) - delivered_before,
            12u);
  ASSERT_NE(metrics->find("serve.queue_depth"), nullptr);
  const Json* wait = metrics->find("serve.admission_wait_micros");
  ASSERT_NE(wait, nullptr);
  EXPECT_GE(wait->u64("count", 0), 1u);

  // Flight recorder: the ensemble query is the newest record, with its
  // trial roll-up and per-worker latency lines.
  stats_query.recent = 5;
  ASSERT_TRUE(rpc(running.endpoint(), encode_query(stats_query), &response,
                  &error))
      << error;
  const Json with_recent = Json::parse(response);
  const Json* recent = with_recent.find("recent");
  ASSERT_NE(recent, nullptr) << response;
  ASSERT_GE(recent->items().size(), 1u);
  const Json& record = recent->items()[0];
  EXPECT_EQ(record.str("req", ""), "ensemble");
  EXPECT_EQ(record.str("outcome", ""), "ok");
  EXPECT_EQ(record.u64("trials_executed", 0), 12u);
  ASSERT_NE(record.find("workers"), nullptr);
  EXPECT_GE(record.find("workers")->items().size(), 1u);

  // Prometheus, both ways: inline through the protocol...
  stats_query.recent = 0;
  stats_query.format = "prometheus";
  ASSERT_TRUE(rpc(running.endpoint(), encode_query(stats_query), &response,
                  &error))
      << error;
  const std::string exposition =
      Json::parse(response).str("prometheus", "");
  EXPECT_NE(exposition.find("# TYPE ppde_worker_serve_trials_executed"),
            std::string::npos);
  EXPECT_NE(exposition.find("ppde_serve_admission_wait_micros_bucket"),
            std::string::npos);

  // ...and scraped over HTTP from the --prom-port listener.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(running.server.prom_port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  const std::string get = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(::send(fd, get.data(), get.size(), 0),
            static_cast<ssize_t>(get.size()));
  std::string scraped;
  char buffer[4096];
  ssize_t got;
  while ((got = ::recv(fd, buffer, sizeof buffer, 0)) > 0)
    scraped.append(buffer, static_cast<std::size_t>(got));
  ::close(fd);
  EXPECT_NE(scraped.find("200 OK"), std::string::npos);
  EXPECT_NE(scraped.find("ppde_serve_trials_delivered"), std::string::npos);

  // An unknown exposition format is an error, not silence.
  stats_query.format = "xml";
  ASSERT_TRUE(rpc(running.endpoint(), encode_query(stats_query), &response,
                  &error));
  EXPECT_FALSE(Json::parse(response).boolean("ok", true)) << response;
}

TEST(Server, TracedFleetStitchesWorkersWithUnchangedDigest) {
  const QueryParams query = smoke_query();
  const std::string reference = smc::to_jsonl(reference_certificate(query));
  ASSERT_NE(digest_of(reference), "");

  for (const unsigned workers : {1u, 2u, 4u}) {
    ServerOptions options;
    options.port = 0;
    options.workers = workers;
    options.shard = 4;
    const std::string path = testing::TempDir() + "serve_stitch_" +
                             std::to_string(workers) + ".json";
    std::string traced;
    {
      // Fork-safety ordering under test: the Server constructor forks the
      // pool, the tracer starts strictly after, run() then announces the
      // worker pids it inherited.
      Server server(options);
      ASSERT_TRUE(obs::Tracer::start(path));
      std::thread thread([&server] { server.run(); });
      std::string error;
      ASSERT_TRUE(rpc("127.0.0.1:" + std::to_string(server.port()),
                      encode_query(query), &traced, &error))
          << error;
      server.request_stop();
      thread.join();
    }
    obs::Tracer::stop();

    // Tracing moved nothing: the certificate digest is byte-identical to
    // the in-process reference at every worker count.
    EXPECT_TRUE(Json::parse(traced).boolean("ok", false)) << traced;
    EXPECT_EQ(digest_of(traced), digest_of(reference))
        << "workers " << workers << ": " << traced;

    // The trace is one stitched timeline: every worker announced as its
    // own track group, worker spans present alongside daemon spans.
    std::ifstream in(path);
    std::stringstream content;
    content << in.rdbuf();
    const std::string text = content.str();
    std::size_t groups = 0;
    for (std::size_t at = text.find("\"ppde worker ");
         at != std::string::npos; at = text.find("\"ppde worker ", at + 1))
      ++groups;
    EXPECT_EQ(groups, workers) << path;
    EXPECT_NE(text.find("\"name\":\"worker_batch\""), std::string::npos);
    EXPECT_NE(text.find("\"name\":\"query\""), std::string::npos);
    EXPECT_NE(text.find("\"name\":\"merge_fold\""), std::string::npos);
    std::remove(path.c_str());
  }
}

// ---------------------------------------------------------------------------
// Signals.

TEST(Signals, WatchRunsCallbackOffTheSignalPath) {
  std::atomic<int> delivered{0};
  {
    SignalWatch watch([&](int signo) { delivered.store(signo); });
    // raise() would target this thread, whose mask blocks the signal
    // forever; kill() targets the process, so sigwait picks it up.
    ASSERT_EQ(::kill(::getpid(), SIGTERM), 0);
    for (int spin = 0; spin < 2000 && delivered.load() == 0; ++spin)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(delivered.load(), SIGTERM);
}

TEST(Signals, WatchDestructsCleanlyWithoutASignal) {
  for (int i = 0; i < 3; ++i) {
    SignalWatch watch([](int) {});
  }
}

}  // namespace
}  // namespace ppde::serve
