// Tests for the statistical model-checking subsystem (DESIGN.md S23):
// SPRT decision boundaries against Wald's expected-sample-size bounds,
// Clopper–Pearson edge cases and exact binomial-tail inversion, the P²
// streaming quantile estimator against exact order statistics, certificate
// determinism across thread counts, the JSONL schema, the adaptive
// threshold sweep, and a differential check pinning SMC verdicts against
// exact pp::Verifier verdicts at tiny populations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "analysis/robustness.hpp"
#include "baselines/flock.hpp"
#include "pp/verifier.hpp"
#include "smc/certify.hpp"
#include "smc/json.hpp"
#include "smc/sprt.hpp"
#include "smc/stats.hpp"
#include "smc/sweep.hpp"
#include "support/rng.hpp"

namespace ppde::smc {
namespace {

SprtOptions loose_sprt() {
  SprtOptions options;
  options.p0 = 0.5;
  options.p1 = 0.9;
  options.alpha = 0.01;
  options.beta = 0.01;
  return options;
}

/// Run the SPRT on a Bernoulli(p) stream until it decides (caller asserts
/// the cap was not hit).
Sprt run_bernoulli(const SprtOptions& options, double p, std::uint64_t seed,
                   std::uint64_t cap) {
  support::Rng rng(seed);
  Sprt sprt(options);
  for (std::uint64_t i = 0; i < cap && !sprt.decided(); ++i)
    sprt.update(rng.below(1u << 30) <
                static_cast<std::uint64_t>(p * (1u << 30)));
  return sprt;
}

TEST(Sprt, BoundariesMatchWald) {
  const Sprt sprt(loose_sprt());
  EXPECT_NEAR(sprt.upper_bound(), std::log(0.99 / 0.01), 1e-12);
  EXPECT_NEAR(sprt.lower_bound(), std::log(0.01 / 0.99), 1e-12);
}

TEST(Sprt, AcceptsTrueHypothesisWithinExpectedSamples) {
  const SprtOptions options = loose_sprt();
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const Sprt sprt = run_bernoulli(options, 0.95, seed, 10'000);
    ASSERT_EQ(sprt.decision(), Sprt::Decision::kAcceptH1) << "seed " << seed;
    // Wald: E_0.95[N] is ~10 observations here; allow a generous factor
    // for stochastic overshoot. All-success acceptance needs
    // ceil(upper / ln(p1/p0)) = 8 observations, the hard floor.
    EXPECT_GE(sprt.trials(), 8u);
    EXPECT_LE(sprt.trials(),
              static_cast<std::uint64_t>(6.0 *
                                         sprt.expected_samples(0.95)) + 8);
  }
}

TEST(Sprt, RejectsFalseHypothesisWithinExpectedSamples) {
  const SprtOptions options = loose_sprt();
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const Sprt sprt = run_bernoulli(options, 0.3, seed, 10'000);
    ASSERT_EQ(sprt.decision(), Sprt::Decision::kAcceptH0) << "seed " << seed;
    EXPECT_LE(sprt.trials(),
              static_cast<std::uint64_t>(
                  6.0 * std::abs(sprt.expected_samples(0.3))) + 8);
  }
}

TEST(Sprt, IndifferentStreamEventuallyDecidesEitherWay) {
  // Inside the indifference region either verdict is acceptable; the test
  // only pins that updates after the decision are ignored.
  Sprt sprt(loose_sprt());
  std::uint64_t decided_at = 0;
  support::Rng rng(99);
  for (std::uint64_t i = 0; i < 100'000 && !sprt.decided(); ++i) {
    sprt.update(rng.coin());
    decided_at = i + 1;
  }
  ASSERT_TRUE(sprt.decided());
  const auto verdict = sprt.decision();
  const auto trials = sprt.trials();
  sprt.update(true);
  sprt.update(false);
  EXPECT_EQ(sprt.decision(), verdict);
  EXPECT_EQ(sprt.trials(), trials);
  EXPECT_EQ(trials, decided_at);
}

TEST(Sprt, RejectsInvalidOptions) {
  SprtOptions options = loose_sprt();
  options.p0 = options.p1;
  EXPECT_THROW(Sprt{options}, std::invalid_argument);
  options = loose_sprt();
  options.alpha = 0.0;
  EXPECT_THROW(Sprt{options}, std::invalid_argument);
}

double binomial_tail_geq(std::uint64_t k, std::uint64_t n, double p) {
  double sum = 0.0;
  for (std::uint64_t i = k; i <= n; ++i)
    sum += std::exp(std::lgamma(n + 1.0) - std::lgamma(i + 1.0) -
                    std::lgamma(n - i + 1.0) +
                    i * std::log(p) + (n - i) * std::log1p(-p));
  return sum;
}

TEST(ClopperPearson, EdgeCasesHaveClosedForms) {
  // k = 0: lower is exactly 0, upper solves (1-p)^n = alpha/2.
  const auto zero = clopper_pearson(0, 10, 0.95);
  EXPECT_EQ(zero.lower, 0.0);
  EXPECT_NEAR(zero.upper, 1.0 - std::pow(0.025, 0.1), 1e-9);
  // k = n: upper is exactly 1, lower solves p^n = alpha/2.
  const auto full = clopper_pearson(10, 10, 0.95);
  EXPECT_EQ(full.upper, 1.0);
  EXPECT_NEAR(full.lower, std::pow(0.025, 0.1), 1e-9);
  // No trials: the vacuous interval.
  const auto vacuous = clopper_pearson(0, 0, 0.95);
  EXPECT_EQ(vacuous.lower, 0.0);
  EXPECT_EQ(vacuous.upper, 1.0);
}

TEST(ClopperPearson, EndpointsInvertTheBinomialTails) {
  // The defining property: at the lower endpoint P(X >= k) = alpha/2, at
  // the upper endpoint P(X <= k) = alpha/2.
  for (const auto& [k, n] : std::vector<std::pair<std::uint64_t,
                                                  std::uint64_t>>{
           {3, 10}, {1, 7}, {17, 20}, {50, 100}}) {
    const auto interval = clopper_pearson(k, n, 0.99);
    EXPECT_NEAR(binomial_tail_geq(k, n, interval.lower), 0.005, 1e-6)
        << k << "/" << n;
    EXPECT_NEAR(1.0 - binomial_tail_geq(k + 1, n, interval.upper), 0.005,
                1e-6)
        << k << "/" << n;
    EXPECT_LT(interval.lower, static_cast<double>(k) / n);
    EXPECT_GT(interval.upper, static_cast<double>(k) / n);
  }
}

TEST(IncompleteBeta, KnownValuesAndSymmetry) {
  EXPECT_NEAR(incomplete_beta(1.0, 1.0, 0.3), 0.3, 1e-12);
  // I_x(2, 2) = 3x^2 - 2x^3.
  EXPECT_NEAR(incomplete_beta(2.0, 2.0, 0.4), 3 * 0.16 - 2 * 0.064, 1e-12);
  for (double x : {0.1, 0.5, 0.9})
    EXPECT_NEAR(incomplete_beta(3.5, 1.25, x),
                1.0 - incomplete_beta(1.25, 3.5, 1.0 - x), 1e-10);
}

TEST(P2Quantile, ExactBelowFiveSamples) {
  P2Quantile median(0.5);
  EXPECT_TRUE(std::isnan(median.value()));
  median.add(5.0);
  EXPECT_EQ(median.value(), 5.0);
  median.add(1.0);
  median.add(3.0);
  EXPECT_EQ(median.value(), 3.0);  // exact order statistic of {1, 3, 5}
}

TEST(P2Quantile, TracksUniformStreamQuantiles) {
  support::Rng rng(7);
  P2Quantile p50(0.5), p90(0.9), p99(0.99);
  std::vector<double> values;
  for (int i = 0; i < 20'000; ++i) {
    const double v =
        static_cast<double>(rng.below(1'000'000)) / 1'000'000.0;
    values.push_back(v);
    p50.add(v);
    p90.add(v);
    p99.add(v);
  }
  std::sort(values.begin(), values.end());
  EXPECT_NEAR(p50.value(), values[values.size() / 2], 0.02);
  EXPECT_NEAR(p90.value(), values[values.size() * 9 / 10], 0.02);
  EXPECT_NEAR(p99.value(), values[values.size() * 99 / 100], 0.01);
  EXPECT_EQ(p50.count(), 20'000u);
}

TEST(P2Quantile, HandlesHeavilyTiedStreams) {
  P2Quantile p90(0.9);
  for (int i = 0; i < 1'000; ++i) p90.add(i % 10 == 0 ? 100.0 : 1.0);
  EXPECT_GE(p90.value(), 1.0);
  EXPECT_LE(p90.value(), 100.0);
}

CertifyOptions fast_options() {
  CertifyOptions options;
  options.delta = 0.1;
  options.indifference = 0.8;  // H0: correct w.p. <= 0.1
  options.alpha = options.beta = 0.01;
  options.max_trials = 64;
  options.batch = 8;
  options.threads = 2;
  options.seed = 11;
  options.sim.stable_window = 20'000;
  options.sim.max_interactions = 50'000'000;
  options.engine = engine::EngineKind::kPerAgent;
  return options;
}

TEST(Certify, DifferentialAgainstExactVerifierOnTinyPopulations) {
  // Flock of birds decides x >= 5; both sides of the threshold, all tiny
  // populations: the exact bottom-SCC verdict and the SMC verdict must
  // agree — certifying the true output succeeds, certifying its negation
  // is refuted.
  const pp::Protocol flock = baselines::make_flock_of_birds(5);
  const pp::Verifier verifier(flock);
  for (std::uint32_t x = 2; x <= 7; ++x) {
    const pp::Config initial = baselines::flock_initial(flock, x);
    const pp::VerificationResult exact = verifier.verify(initial);
    ASSERT_TRUE(exact.stabilises()) << "x=" << x;
    const Certificate agree =
        certify(flock, initial, exact.output(), fast_options());
    EXPECT_EQ(agree.verdict, Verdict::kCertified) << "x=" << x;
    const Certificate disagree =
        certify(flock, initial, !exact.output(), fast_options());
    EXPECT_EQ(disagree.verdict, Verdict::kRefuted) << "x=" << x;
  }
}

TEST(Certify, DigestIsIndependentOfThreadCountAndBatch) {
  const pp::Protocol flock = baselines::make_flock_of_birds(4);
  const pp::Config initial = baselines::flock_initial(flock, 6);
  CertifyOptions options = fast_options();
  options.threads = 1;
  const Certificate one = certify(flock, initial, true, options);
  options.threads = 8;
  const Certificate eight = certify(flock, initial, true, options);
  options.batch = 3;  // different batching must not change the outcome
  const Certificate odd_batch = certify(flock, initial, true, options);
  EXPECT_EQ(certificate_payload(one), certificate_payload(eight));
  EXPECT_EQ(certificate_payload(one), certificate_payload(odd_batch));
  EXPECT_EQ(certificate_digest(one), certificate_digest(eight));
  EXPECT_EQ(one.verdict, Verdict::kCertified);
  EXPECT_GT(one.trials, 0u);
}

TEST(Certify, DigestIsIndependentOfLockstepWidth) {
  // The S28 lockstep core applies to this configuration (count+null-skip,
  // default scenario); the certificate — payload and digest — must be
  // byte-identical at every lane width and thread count, because every
  // lane consumes exactly the per-trial seed stream the scalar path
  // defines. Width 0 (auto) resolves to the host's preferred lanes and
  // must change nothing either.
  const pp::Protocol flock = baselines::make_flock_of_birds(4);
  const pp::Config initial = baselines::flock_initial(flock, 6);
  CertifyOptions options = fast_options();
  options.engine = engine::EngineKind::kCountNullSkip;
  options.threads = 1;
  options.batch_width = 1;
  const Certificate scalar = certify(flock, initial, true, options);
  EXPECT_EQ(scalar.verdict, Verdict::kCertified);
  for (const std::uint32_t width : {0u, 2u, 8u, 16u}) {
    for (const unsigned threads : {1u, 4u}) {
      options.batch_width = width;
      options.threads = threads;
      const Certificate lockstep = certify(flock, initial, true, options);
      EXPECT_EQ(certificate_payload(lockstep), certificate_payload(scalar))
          << "width=" << width << " threads=" << threads;
      EXPECT_EQ(certificate_digest(lockstep), certificate_digest(scalar))
          << "width=" << width << " threads=" << threads;
    }
  }
}

TEST(Certify, BudgetCapDowngradesToInconclusive) {
  const pp::Protocol flock = baselines::make_flock_of_birds(4);
  const pp::Config initial = baselines::flock_initial(flock, 6);
  CertifyOptions options = fast_options();
  options.max_trials = 2;  // far below the ~8 successes H1 needs
  const Certificate cert = certify(flock, initial, true, options);
  EXPECT_EQ(cert.verdict, Verdict::kInconclusive);
  EXPECT_EQ(cert.trials, 2u);  // partial stats, not silence
  EXPECT_EQ(cert.successes, 2u);
  EXPECT_GT(cert.interval.lower, 0.0);
  EXPECT_LT(cert.interval.lower, 1.0);
}

TEST(Certify, TracksConvergenceTails) {
  const pp::Protocol flock = baselines::make_flock_of_birds(3);
  const pp::Config initial = baselines::flock_initial(flock, 5);
  CertifyOptions options = fast_options();
  options.delta = 0.05;
  options.indifference = 0.5;
  const Certificate cert = certify(flock, initial, true, options);
  ASSERT_EQ(cert.verdict, Verdict::kCertified);
  EXPECT_FALSE(std::isnan(cert.time_p50));
  EXPECT_LE(cert.time_p50, cert.time_p90 + 1e-12);
  EXPECT_LE(cert.time_p90, cert.time_p99 + 1e-12);
  EXPECT_GT(cert.total_meetings, 0u);
}

TEST(Certify, FingerprintDistinguishesProtocols) {
  const pp::Protocol a = baselines::make_flock_of_birds(4);
  const pp::Protocol b = baselines::make_flock_of_birds(5);
  const pp::Protocol a_again = baselines::make_flock_of_birds(4);
  EXPECT_EQ(a.fingerprint(), a_again.fingerprint());
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(Json, CertificateRecordHasSchemaAndStableDigest) {
  const pp::Protocol flock = baselines::make_flock_of_birds(3);
  const Certificate cert =
      certify(flock, baselines::flock_initial(flock, 4), true,
              fast_options());
  const std::string line = to_jsonl(cert);
  for (const char* key :
       {"\"smc_certificate_v\":1", "\"verdict\":", "\"protocol\":",
        "\"population\":", "\"delta\":", "\"alpha\":", "\"beta\":",
        "\"seed\":", "\"trials\":", "\"successes\":", "\"llr\":",
        "\"ci_lower\":", "\"ci_upper\":", "\"time_p50\":", "\"digest\":",
        "\"wall_seconds\":", "\"threads\":"})
    EXPECT_NE(line.find(key), std::string::npos) << key << " in " << line;
  // The digest covers the payload only: re-rendering reproduces it, and
  // the wall-clock field does not feed it.
  char digest_text[32];
  std::snprintf(digest_text, sizeof digest_text, "\"digest\":\"%016llx\"",
                static_cast<unsigned long long>(certificate_digest(cert)));
  EXPECT_NE(line.find(digest_text), std::string::npos);
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
}

TEST(Json, EnsembleRecordHasSchema) {
  engine::EnsembleStats stats;
  stats.trials = 4;
  stats.stabilised = 4;
  stats.accepted = 3;
  const std::string line =
      to_jsonl(stats, 16, 42, engine::EngineKind::kCountNullSkip);
  for (const char* key :
       {"\"smc_ensemble_v\":1", "\"population\":16", "\"master_seed\":42",
        "\"engine\":\"count+null-skip\"", "\"trials\":4",
        "\"accepted\":3"})
    EXPECT_NE(line.find(key), std::string::npos) << key << " in " << line;
}

TEST(Json, WriterEscapesStrings) {
  JsonWriter json;
  json.field("text", std::string_view("a\"b\\c\nd"));
  EXPECT_EQ(json.finish(), "{\"text\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(Json, WriterEscapesControlCharacters) {
  // Everything below 0x20 must come out as an escape — named for the
  // common ones, \u00xx for the rest — or the line is not valid JSON.
  JsonWriter json;
  json.field("text", std::string_view("a\x01" "b\x1f" "\tc\r"));
  EXPECT_EQ(json.finish(), "{\"text\":\"a\\u0001b\\u001f\\tc\\r\"}");
}

TEST(Json, WriterRendersNonFiniteDoublesAsNull) {
  // JSON has no inf/nan literals; a non-finite statistic (e.g. the time
  // tails of a certificate with zero successes) must render as null, not
  // as an unparseable "inf"/"nan" token.
  JsonWriter json;
  json.field("nan", std::nan(""));
  json.field("pinf", std::numeric_limits<double>::infinity());
  json.field("ninf", -std::numeric_limits<double>::infinity());
  json.field("finite", 0.5);
  EXPECT_EQ(json.finish(),
            "{\"nan\":null,\"pinf\":null,\"ninf\":null,\"finite\":0.5}");
}

TEST(Json, RawFieldEmbedsPreserialisedValues) {
  // The trace writer (obs/trace.cpp) nests pre-serialised args objects
  // through raw_field; the value must land verbatim, the key escaped.
  JsonWriter json;
  json.field("a", std::uint64_t{1});
  json.raw_field("args", "{\"n\":2}");
  EXPECT_EQ(json.finish(), "{\"a\":1,\"args\":{\"n\":2}}");
}

TEST(Sweep, BracketsFlockThreshold) {
  const pp::Protocol flock = baselines::make_flock_of_birds(5);
  SweepOptions options;
  options.certify = fast_options();
  ThresholdSweep sweep = sweep_threshold(
      flock,
      [&](std::uint64_t m) {
        return baselines::flock_initial(flock,
                                        static_cast<std::uint32_t>(m));
      },
      /*lo=*/2, /*hi=*/8, options);
  ASSERT_TRUE(sweep.bracketed);
  EXPECT_EQ(sweep.below, 4u);
  EXPECT_EQ(sweep.above, 5u);
  EXPECT_GE(sweep.points.size(), 3u);
  EXPECT_GT(sweep.total_trials, 0u);
}

TEST(Sweep, UnbracketedWhenThresholdOutsideRange) {
  const pp::Protocol flock = baselines::make_flock_of_birds(3);
  SweepOptions options;
  options.certify = fast_options();
  const ThresholdSweep sweep = sweep_threshold(
      flock,
      [&](std::uint64_t m) {
        return baselines::flock_initial(flock,
                                        static_cast<std::uint32_t>(m));
      },
      /*lo=*/4, /*hi=*/9, options);  // accepts everywhere in [4, 9]
  EXPECT_FALSE(sweep.bracketed);
  EXPECT_EQ(sweep.points.size(), 2u);  // endpoints only, then stop
}

TEST(RobustnessCertification, FlockUnderInputNoiseStaysCorrect) {
  // Input-state noise only: extra birds are still birds, the total count
  // still decides the predicate, so the certified sweep must accept. The
  // verdict is deterministic at every thread count.
  const pp::Protocol flock = baselines::make_flock_of_birds(3);
  const std::vector<pp::State> pool{flock.state("1")};
  CertifyOptions options = fast_options();
  const auto predicate = [](std::uint64_t m) { return m >= 3; };
  const Certificate one = analysis::sweep_certified(
      flock, baselines::flock_initial(flock, 4), /*max_noise=*/3, predicate,
      options, engine::EngineKind::kPerAgent, &pool);
  EXPECT_EQ(one.verdict, Verdict::kCertified);
  CertifyOptions eight = options;
  eight.threads = 8;
  const Certificate again = analysis::sweep_certified(
      flock, baselines::flock_initial(flock, 4), /*max_noise=*/3, predicate,
      eight, engine::EngineKind::kPerAgent, &pool);
  EXPECT_EQ(certificate_payload(one), certificate_payload(again));
}

}  // namespace
}  // namespace ppde::smc
