// Tests for the machine-to-protocol conversion (Section 7.3 / Appendix
// B.3): structural gadget checks (Figure 4), leader election (Lemma 15),
// the π-projection, Theorem 5's input shift, and exhaustive end-to-end
// verification of the full pipeline
//   Section-6 construction -> machine -> population protocol
// for n = 1 (the protocol decides m_regs >= k(1) = 2).
#include "compile/to_protocol.hpp"

#include <gtest/gtest.h>

#include "compile/lower.hpp"
#include "czerner/construction.hpp"
#include "machine/interp.hpp"
#include "pp/simulator.hpp"
#include "pp/verifier.hpp"
#include "progmodel/builder.hpp"
#include "progmodel/sample_programs.hpp"

namespace ppde::compile {
namespace {

using machine::MachineState;
using pp::VerificationResult;
using pp::Verifier;
using pp::VerifierOptions;

/// Tiny program deciding "at least one register agent": Main: OF := false;
/// while true { if detect x > 0 then OF := true }. Its machine has the
/// minimal pointer set, keeping exhaustive election checks cheap.
progmodel::Program make_at_least_one() {
  progmodel::ProgramBuilder b;
  const progmodel::Reg x = b.reg("x");
  const progmodel::ProcRef main =
      b.proc("Main", false, [&](progmodel::BlockBuilder& s) {
        s.set_of(false);
        s.while_(s.constant(true), [&](progmodel::BlockBuilder& t) {
          t.if_(t.detect(x), [](progmodel::BlockBuilder& u) {
            u.set_of(true);
          });
        });
      });
  return std::move(b).build(main);
}

// -- structure -----------------------------------------------------------------

TEST(Conversion, StateCountMatchesFormula) {
  for (const auto& program :
       {progmodel::make_figure3_program(), progmodel::make_figure1_program(),
        czerner::build_construction(1).program}) {
    const LoweredMachine lowered = lower_program(program);
    const ProtocolConversion conv = machine_to_protocol(lowered.machine);
    EXPECT_EQ(conv.protocol.num_states(),
              conversion_state_count(lowered.machine));
  }
}

TEST(Conversion, NoBroadcastHalvesStates) {
  const LoweredMachine lowered =
      lower_program(progmodel::make_figure3_program());
  ConversionOptions nb;
  nb.with_broadcast = false;
  const ProtocolConversion with = machine_to_protocol(lowered.machine);
  const ProtocolConversion without = machine_to_protocol(lowered.machine, nb);
  EXPECT_EQ(with.protocol.num_states(), 2 * without.protocol.num_states());
}

TEST(Conversion, StatesPerTheorem5AreLinearInMachineSize) {
  // Proposition 16: |Q'| = 2|Q*| <= 2(|Q| + 7 sum|F_X| + L) = O(machine
  // size). Check the concrete bound on the construction.
  for (int n = 1; n <= 4; ++n) {
    const LoweredMachine lowered =
        lower_program(czerner::build_construction(n).program);
    const std::uint64_t states = conversion_state_count(lowered.machine);
    std::uint64_t domain_sum = 0;
    for (const auto& pointer : lowered.machine.pointers)
      domain_sum += pointer.domain.size();
    EXPECT_LE(states, 2 * (lowered.machine.num_registers() + 7 * domain_sum +
                           lowered.machine.num_instructions()))
        << "n=" << n;
  }
}

TEST(Conversion, Figure4MoveGadgetTransitionsExist) {
  // For a move instruction i: IP^i_none meets V_x^v_none -> IP^i_wait +
  // V_x^v_emit, and V_x^v_emit meets a register-v agent parking one unit.
  const LoweredMachine lowered =
      lower_program(progmodel::make_figure3_program());
  const machine::Machine& m = lowered.machine;
  const ProtocolConversion conv = machine_to_protocol(m);

  std::uint32_t move_at = 0;
  while (m.instrs[move_at].kind != machine::Instr::Kind::kMove) ++move_at;
  const machine::PtrId vx = m.v_reg[m.instrs[move_at].x];

  const pp::State ip_none =
      conv.pointer_state(m.ip, move_at, Stage::kNone, false);
  const pp::State vx_none = conv.pointer_state(vx, 0, Stage::kNone, false);
  EXPECT_FALSE(conv.protocol.transitions_for(ip_none, vx_none).empty())
      << "IP must recruit V_x";

  const pp::State vx_emit = conv.pointer_state(vx, 0, Stage::kEmit, false);
  const pp::State reg0 = conv.reg_state(0, false);
  EXPECT_FALSE(conv.protocol.transitions_for(vx_emit, reg0).empty())
      << "V_x in emit must park a register agent";
}

TEST(Conversion, Figure4TestGadgetWritesCF) {
  const LoweredMachine lowered =
      lower_program(progmodel::make_figure3_program());
  const machine::Machine& m = lowered.machine;
  const ProtocolConversion conv = machine_to_protocol(m);
  const machine::PtrId vx = m.v_reg[0];
  const pp::State vx_true = conv.pointer_state(vx, 0, Stage::kTrue, false);
  const pp::State cf_false =
      conv.pointer_state(m.cf, 0, Stage::kNone, false);
  const auto hits = conv.protocol.transitions_for(vx_true, cf_false);
  ASSERT_FALSE(hits.empty());
  const pp::Transition& t = conv.protocol.transitions()[hits[0]];
  EXPECT_EQ(t.r2, conv.pointer_state(m.cf, 1, Stage::kNone, false))
      << "the verdict true must be written into CF";
}

TEST(Conversion, InputStateIsFirstElectedPointer) {
  const LoweredMachine lowered =
      lower_program(progmodel::make_figure3_program());
  const ProtocolConversion conv = machine_to_protocol(lowered.machine);
  ASSERT_EQ(conv.protocol.input_states().size(), 1u);
  EXPECT_EQ(conv.protocol.input_states()[0], conv.input_state());
  // Input agents carry opinion false (rejecting by default).
  EXPECT_FALSE(conv.protocol.is_accepting(conv.input_state()));
}

// -- Lemma 15: leader election ----------------------------------------------------

TEST(Election, ReachesPiOfAnInitialMachineConfiguration) {
  // Simulate from c = m agents in X_1 and check that the population settles
  // into pi-form: exactly one agent per pointer, all at stage none, and the
  // machine then executes (the at-least-one machine accepts iff a register
  // agent exists, i.e. m > |F|).
  const LoweredMachine lowered = lower_program(make_at_least_one());
  const ProtocolConversion conv = machine_to_protocol(lowered.machine);
  const std::uint32_t f = conv.num_pointers;
  for (std::uint32_t m : {f, f + 1, f + 3}) {
    pp::Simulator sim(conv.protocol, conv.initial_config(m), 17 + m);
    pp::SimulationOptions options;
    options.stable_window = 400'000;
    options.max_interactions = 100'000'000;
    const auto result = sim.run_until_stable(options);
    ASSERT_TRUE(result.stabilised) << "m=" << m;
    EXPECT_EQ(result.output, m > f) << "m=" << m;
  }
}

TEST(Election, ExhaustiveOnMinimalMachine) {
  // Exact check including the election phase: every fair run from m agents
  // in X_1 stabilises to [m - |F| >= 1].
  const LoweredMachine lowered = lower_program(make_at_least_one());
  ConversionOptions nb;
  nb.with_broadcast = false;
  const ProtocolConversion conv = machine_to_protocol(lowered.machine, nb);
  VerifierOptions options;
  options.witness_mode = true;
  options.max_configs = 4'000'000;
  const std::uint32_t f = conv.num_pointers;
  for (std::uint32_t m : {f, f + 1, f + 2}) {
    const VerificationResult result =
        Verifier(conv.protocol).verify(conv.initial_config(m), options);
    ASSERT_TRUE(result.stabilises()) << "m=" << m;
    EXPECT_EQ(result.output(), m > f) << "m=" << m;
  }
}

TEST(Election, TooFewAgentsNeverAccepts) {
  // Proposition 16: with fewer than |F| agents no agent ever reaches an
  // IP state, so nothing executes and the output stays false.
  const LoweredMachine lowered = lower_program(make_at_least_one());
  ConversionOptions nb;
  nb.with_broadcast = false;
  const ProtocolConversion conv = machine_to_protocol(lowered.machine, nb);
  VerifierOptions options;
  options.witness_mode = true;
  for (std::uint32_t m = 2; m < conv.num_pointers; ++m) {
    const VerificationResult result =
        Verifier(conv.protocol).verify(conv.initial_config(m), options);
    ASSERT_TRUE(result.stabilises()) << "m=" << m;
    EXPECT_FALSE(result.output()) << "m=" << m;
  }
}

// -- π-projection and end-to-end pipeline -------------------------------------------

class PipelineN1 : public ::testing::Test {
 protected:
  PipelineN1()
      : lowered_(lower_program(czerner::build_construction(1).program)) {
    ConversionOptions nb;
    nb.with_broadcast = false;
    conv_ = machine_to_protocol(lowered_.machine, nb);
  }

  MachineState state_with_r(std::uint64_t m_regs) const {
    std::vector<std::uint64_t> regs(5, 0);
    regs[4] = m_regs;  // everything in R
    return machine::initial_state(lowered_.machine, regs);
  }

  LoweredMachine lowered_;
  ProtocolConversion conv_;
};

TEST_F(PipelineN1, PiConfigurationShape) {
  const pp::Config config = conv_.pi(state_with_r(3), false);
  EXPECT_EQ(config.total(), conv_.num_pointers + 3);
  // Exactly one agent per pointer, at its initial value / stage none.
  for (machine::PtrId p = 0; p < lowered_.machine.num_pointers(); ++p)
    EXPECT_EQ(config[conv_.pointer_state(
                  p, lowered_.machine.pointers[p].initial, Stage::kNone,
                  false)],
              1u)
        << lowered_.machine.pointers[p].name;
}

TEST_F(PipelineN1, ExhaustiveDecisionFromPi) {
  // The headline end-to-end result at n=1: every fair run of the converted
  // protocol from pi(initial machine state with m_regs register agents)
  // stabilises to [m_regs >= 2] — Theorem 3 + Theorem 5, verified exactly.
  VerifierOptions options;
  options.witness_mode = true;
  options.max_configs = 1'000'000;
  for (std::uint64_t m_regs = 0; m_regs <= 2; ++m_regs) {
    const VerificationResult result = Verifier(conv_.protocol)
                                          .verify(conv_.pi(state_with_r(m_regs),
                                                           false),
                                                  options);
    ASSERT_TRUE(result.stabilises()) << "m_regs=" << m_regs;
    EXPECT_EQ(result.output(), m_regs >= 2) << "m_regs=" << m_regs;
  }
}

TEST_F(PipelineN1, ExhaustiveDecisionIncludingElection) {
  // Including the election phase (reject side; the accept side's
  // reachable space exceeds memory — covered from pi above).
  VerifierOptions options;
  options.witness_mode = true;
  options.max_configs = 2'000'000;
  const VerificationResult result =
      Verifier(conv_.protocol)
          .verify(conv_.initial_config(conv_.num_pointers + 1), options);
  ASSERT_TRUE(result.stabilises());
  EXPECT_FALSE(result.output()) << "|F|+1 agents = 1 register agent < k = 2";
}

TEST(PipelineBroadcast, CzernerN1SimulationWithConsensus) {
  // Full protocol (with the output broadcast): random simulation reaches a
  // true consensus for m = |F| + 2 and stays all-false for m = |F| + 1.
  const LoweredMachine lowered =
      lower_program(czerner::build_construction(1).program);
  const ProtocolConversion conv = machine_to_protocol(lowered.machine);
  pp::SimulationOptions options;
  options.stable_window = 30'000'000;
  options.max_interactions = 500'000'000;
  for (std::uint32_t extra : {1u, 2u}) {
    pp::Simulator sim(conv.protocol,
                      conv.initial_config(conv.num_pointers + extra),
                      991 + extra);
    const auto result = sim.run_until_stable(options);
    ASSERT_TRUE(result.stabilised) << "m=|F|+" << extra;
    EXPECT_EQ(result.output, extra >= 2) << "m=|F|+" << extra;
  }
}

TEST(PipelineBroadcast, WindowProgramSimulatedWhereObservable) {
  // Program-level predicate with an upper threshold: 4 <= m_regs < 7
  // through the whole pipeline. Randomized simulation can observe the
  // accept case (m_regs = 5) and the below-threshold reject (m_regs = 2).
  // The above-threshold reject (m_regs >= 7) needs seven *consecutive*
  // occupancy-certifying meetings whose probability is astronomically small
  // under the uniform scheduler — it is checked exhaustively below instead.
  const LoweredMachine lowered =
      lower_program(progmodel::make_figure1_program());
  const ProtocolConversion conv = machine_to_protocol(lowered.machine);
  pp::SimulationOptions options;
  options.stable_window = 30'000'000;
  options.max_interactions = 600'000'000;
  for (std::uint32_t m_regs : {2u, 5u}) {
    pp::Simulator sim(conv.protocol,
                      conv.initial_config(conv.num_pointers + m_regs),
                      3 + m_regs);
    const auto result = sim.run_until_stable(options);
    ASSERT_TRUE(result.stabilised) << "m_regs=" << m_regs;
    EXPECT_EQ(result.output, m_regs >= 4 && m_regs < 7)
        << "m_regs=" << m_regs;
  }
}

TEST(PipelineBroadcast, WindowProgramUpperRejectExhaustive) {
  // The fair-run property simulation cannot observe: with m_regs = 7 the
  // converted protocol *does* stabilise to false (every bottom SCC rejects).
  const LoweredMachine lowered =
      lower_program(progmodel::make_figure1_program());
  ConversionOptions nb;
  nb.with_broadcast = false;
  const ProtocolConversion conv = machine_to_protocol(lowered.machine, nb);
  std::vector<std::uint64_t> regs = {0, 0, 7};
  const MachineState state = machine::initial_state(lowered.machine, regs);
  VerifierOptions options;
  options.witness_mode = true;
  options.max_configs = 4'000'000;
  const VerificationResult result =
      Verifier(conv.protocol).verify(conv.pi(state, false), options);
  ASSERT_TRUE(result.stabilises());
  EXPECT_FALSE(result.output());
}

}  // namespace
}  // namespace ppde::compile
