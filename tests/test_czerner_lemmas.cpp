// Exhaustive validation of the construction's correctness lemmas
// (paper Appendix A): for each procedure and each configuration type the
// paper distinguishes, we enumerate post(C, f) exactly (all nondeterminism,
// fairness-aware divergence detection) and check it against the lemma's
// statement.
//
//   Lemma 8  — AssertEmpty(i): no effect; restart possible iff not i-empty.
//   Lemma 9  — AssertProper(i): identity on proper/low configs; restarts on
//              high configs and on inflated level-i registers; robust.
//   Lemma 10 — Zero(x): deterministic zero-check on weakly proper configs;
//              characterised outcomes above the invariant; false implies
//              x > 0; robust.
//   Lemma 11 — IncrPair(x, y): increments the simulated base-(N_i+1)
//              counter; *reversible* under the weak i-high assumption;
//              j-robust for j <= i.
//   Lemma 12 — Large(x): nondeterministic >= N_i check with the exact
//              register exchange of the paper; robust.
//   Lemma 4  — Main: trichotomy (may stabilise false / may stabilise true /
//              always restarts) matching the configuration classifier.
//
// Levels 1 and 2 are exercised inside an n=3 instance (so that all
// level-1/2 instantiations exist), Large additionally at level 3.
#include <gtest/gtest.h>

#include <cstdint>

#include "czerner/classify.hpp"
#include "czerner/construction.hpp"
#include "progmodel/explore.hpp"
#include "progmodel/flat.hpp"
#include "progmodel/interp.hpp"

namespace ppde::czerner {
namespace {

using progmodel::ExploreLimits;
using progmodel::FlatProgram;
using progmodel::MainAnalysis;
using progmodel::PostResult;

class LemmaFixture : public ::testing::Test {
 protected:
  LemmaFixture()
      : c_(build_construction(3)), flat_(FlatProgram::compile(c_.program)) {}

  PostResult post(const std::string& proc, const RegValues& regs,
                  std::uint64_t max_nodes = 3'000'000) const {
    ExploreLimits limits;
    limits.max_nodes = max_nodes;
    PostResult result = progmodel::explore_post(flat_, c_.proc(proc), regs,
                                                limits);
    EXPECT_FALSE(result.limit_hit) << proc;
    return result;
  }

  /// Registers in paper layout: per level x, ~x, y, ~y; then R.
  RegValues regs(std::initializer_list<std::uint64_t> values) const {
    RegValues result(values);
    EXPECT_EQ(result.size(), c_.num_registers());
    return result;
  }

  // Named configurations (N_1 = 1, N_2 = 4, N_3 = 25).
  RegValues proper3(std::uint64_t r = 0) const {
    return regs({0, 1, 0, 1, 0, 4, 0, 4, 0, 25, 0, 25, r});
  }
  RegValues weakly2(std::uint64_t x2, std::uint64_t y2) const {
    return regs({0, 1, 0, 1, x2, 4 - x2, y2, 4 - y2, 0, 0, 0, 0, 0});
  }
  RegValues low2(std::uint64_t xb, std::uint64_t yb) const {
    return regs({0, 1, 0, 1, 0, xb, 0, yb, 0, 0, 0, 0, 0});
  }

  Construction c_;
  FlatProgram flat_;
};

// ---------------------------------------------------------------------------
// Lemma 8: AssertEmpty
// ---------------------------------------------------------------------------

TEST_F(LemmaFixture, Lemma8NoEffectAndRestartIffNotEmpty) {
  const std::vector<RegValues> configs = {
      regs({2, 4, 8, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0}),  // 2-empty
      regs({2, 4, 8, 3, 0, 1, 0, 0, 0, 0, 0, 0, 0}),  // not 2-empty
      regs({0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 5}),  // R occupied
      proper3(0),
      proper3(3),
  };
  for (int i = 2; i <= 4; ++i) {
    const std::string proc = "AssertEmpty(" + std::to_string(i) + ")";
    for (const RegValues& config : configs) {
      const PostResult result = post(proc, config);
      // No effect: the only return outcome is the unchanged configuration.
      ASSERT_EQ(result.outcomes.size(), 1u) << proc;
      EXPECT_TRUE(result.contains(config, -1)) << proc;
      EXPECT_FALSE(result.can_diverge) << proc;
      EXPECT_EQ(result.can_restart, !is_i_empty(c_, config, i)) << proc;
    }
  }
}

// ---------------------------------------------------------------------------
// Lemma 9: AssertProper
// ---------------------------------------------------------------------------

TEST_F(LemmaFixture, Lemma9aIdentityOnProperAndLow) {
  const std::vector<std::pair<int, RegValues>> cases = {
      {1, proper3(0)},
      {2, proper3(5)},
      {3, proper3(1)},
      {1, regs({0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})},  // 1-low
      {2, low2(3, 4)},                                      // 2-low
      {2, low2(0, 0)},                                      // 2-low (empty)
  };
  for (const auto& [i, config] : cases) {
    const std::string proc = "AssertProper(" + std::to_string(i) + ")";
    const PostResult result = post(proc, config);
    EXPECT_TRUE(result.returns_only()) << proc;
    ASSERT_EQ(result.outcomes.size(), 1u) << proc;
    EXPECT_TRUE(result.contains(config, -1)) << proc;
  }
}

TEST_F(LemmaFixture, Lemma9bRestartsOnHighConfigs) {
  // 1-high inside AssertProper(2): x1 + ~x1 >= 1, y1 + ~y1 >= 1, not proper.
  const RegValues high1 = regs({1, 1, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0});
  ASSERT_TRUE(is_i_high(c_, high1, 1));
  EXPECT_TRUE(post("AssertProper(1)", high1).can_restart);
  EXPECT_TRUE(post("AssertProper(2)", high1).can_restart);

  const RegValues high2 = regs({0, 1, 0, 1, 3, 4, 2, 5, 0, 0, 0, 0, 0});
  ASSERT_TRUE(is_i_high(c_, high2, 2));
  EXPECT_TRUE(post("AssertProper(2)", high2).can_restart);
  EXPECT_TRUE(post("AssertProper(3)", high2).can_restart);
}

TEST_F(LemmaFixture, Lemma9cRestartsOnInflatedLevelRegisters) {
  // (i-1)-proper with C(x_i) > 0: restart possible.
  const RegValues digit = regs({0, 1, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0});
  EXPECT_TRUE(post("AssertProper(2)", digit).can_restart);
  // (i-1)-proper with C(~x_i) > N_i: restart possible.
  const RegValues inflated = regs({0, 1, 0, 1, 0, 6, 0, 4, 0, 0, 0, 0, 0});
  EXPECT_TRUE(post("AssertProper(2)", inflated).can_restart);
  // ~y_2 inflated as well (second loop iteration).
  const RegValues inflated_y = regs({0, 1, 0, 1, 0, 4, 0, 7, 0, 0, 0, 0, 0});
  EXPECT_TRUE(post("AssertProper(2)", inflated_y).can_restart);
}

TEST_F(LemmaFixture, Lemma9dRobustOnHighConfigs) {
  const RegValues high2 = regs({0, 1, 0, 1, 3, 4, 2, 5, 0, 0, 0, 0, 2});
  ASSERT_TRUE(is_i_high(c_, high2, 2));
  for (int i = 1; i <= 3; ++i) {
    const PostResult result =
        post("AssertProper(" + std::to_string(i) + ")", high2);
    EXPECT_FALSE(result.can_diverge) << i;
    for (const auto& outcome : result.outcomes)
      EXPECT_TRUE(is_i_high(c_, outcome.regs, 2)) << i;
  }
}

// ---------------------------------------------------------------------------
// Lemma 10: Zero
// ---------------------------------------------------------------------------

TEST_F(LemmaFixture, Lemma10aDeterministicOnWeaklyProper) {
  struct Case {
    const char* proc;
    RegValues config;
    bool is_zero;
  };
  const std::vector<Case> cases = {
      {"Zero(x1)", proper3(0), true},
      {"Zero(~x1)", proper3(0), false},
      {"Zero(x2)", weakly2(0, 2), true},
      {"Zero(x2)", weakly2(3, 0), false},
      {"Zero(~y2)", weakly2(1, 2), false},
      {"Zero(~y2)", weakly2(0, 4), true},  // ~y2 = 0 when y2 = N_2
  };
  for (const auto& [proc, config, is_zero] : cases) {
    const PostResult result = post(proc, config);
    EXPECT_TRUE(result.returns_only()) << proc;
    ASSERT_EQ(result.outcomes.size(), 1u) << proc;
    EXPECT_TRUE(result.contains(config, is_zero ? 1 : 0)) << proc;
  }
}

TEST_F(LemmaFixture, Lemma10bOutcomesAboveInvariant) {
  // (i-1)-proper, x2 + ~x2 = 6 >= N_2 = 4, x2 = 2 > 0, ~x2 = 4 >= N_2:
  // both outcomes exist, true swaps per the lemma's C'.
  const RegValues config = regs({0, 1, 0, 1, 2, 4, 0, 4, 0, 0, 0, 0, 0});
  const PostResult result = post("Zero(x2)", config);
  EXPECT_TRUE(result.returns_only());
  EXPECT_TRUE(result.contains(config, 0)) << "false with registers unchanged";
  // C'(~x2) = C(x2) + N_2 = 6, C'(x2) = C(~x2) - N_2 = 0.
  const RegValues swapped = regs({0, 1, 0, 1, 0, 6, 0, 4, 0, 0, 0, 0, 0});
  EXPECT_TRUE(result.contains(swapped, 1));
  EXPECT_EQ(result.outcomes.size(), 2u);
}

TEST_F(LemmaFixture, Lemma10bNoTrueWhenBarBelowThreshold) {
  // x2 + ~x2 = 5 >= 4 but ~x2 = 3 < N_2: only the false outcome.
  const RegValues config = regs({0, 1, 0, 1, 2, 3, 0, 4, 0, 0, 0, 0, 0});
  const PostResult result = post("Zero(x2)", config);
  EXPECT_TRUE(result.returns_only());
  ASSERT_EQ(result.outcomes.size(), 1u);
  EXPECT_TRUE(result.contains(config, 0));
}

TEST_F(LemmaFixture, Lemma10cFalseImpliesNonzero) {
  const std::vector<std::pair<const char*, RegValues>> cases = {
      {"Zero(x2)", weakly2(3, 0)},
      {"Zero(y2)", weakly2(1, 2)},
      {"Zero(~x1)", proper3(4)},
      {"Zero(x2)", regs({0, 1, 0, 1, 2, 4, 0, 4, 0, 0, 0, 0, 0})},
  };
  const auto reg_of = [this](const std::string& proc) {
    // "Zero(<reg>)" -> register index.
    const std::string name = proc.substr(5, proc.size() - 6);
    for (progmodel::Reg r = 0; r < c_.num_registers(); ++r)
      if (c_.program.registers[r] == name) return r;
    throw std::out_of_range(name);
  };
  for (const auto& [proc, config] : cases) {
    const PostResult result = post(proc, config);
    for (const auto& outcome : result.outcomes) {
      if (outcome.ret == 0) {
        EXPECT_GT(outcome.regs[reg_of(proc)], 0u) << proc;
      }
    }
  }
}

TEST_F(LemmaFixture, Lemma10dRobustNeverDiverges) {
  // On a 1-high configuration Zero at level 2 must terminate or restart —
  // never loop forever (the in-loop AssertProper restarts eventually).
  const RegValues high1 = regs({2, 1, 1, 1, 0, 2, 0, 0, 0, 0, 0, 0, 0});
  ASSERT_TRUE(is_i_high(c_, high1, 1));
  for (const char* proc : {"Zero(x2)", "Zero(~x2)", "Zero(y2)"}) {
    const PostResult result = post(proc, high1);
    EXPECT_FALSE(result.can_diverge) << proc;
    EXPECT_TRUE(result.can_restart) << proc;
    for (const auto& outcome : result.outcomes)
      EXPECT_TRUE(is_i_high(c_, outcome.regs, 1)) << proc;
  }
}

TEST_F(LemmaFixture, Lemma10LowConfigDivergesOnlyViaFairRestart) {
  // Below the invariant (x2 + ~x2 < N_2, x2 = 0) the zero-check can neither
  // return true nor detect x2 — Section 5.2's "infinite loop" case. The
  // paper's remedy: AssertProper inside the loop must make a restart
  // available. Here level 1 is proper, so nothing restarts: this is the
  // genuinely divergent case, which Main excludes by construction (it only
  // calls Zero under the lexicographic precondition).
  const RegValues low = low2(2, 4);
  const PostResult result = post("Zero(x2)", low);
  EXPECT_TRUE(result.can_diverge);
  EXPECT_FALSE(result.contains(low, 1));
}

// ---------------------------------------------------------------------------
// Lemma 11: IncrPair
// ---------------------------------------------------------------------------

TEST_F(LemmaFixture, Lemma11aIncrementsTheCounter) {
  // ctr_{x2,y2} = x2 * 5 + y2 over weakly 2-proper configs; IncrPair must
  // bump it by exactly 1 mod 25 and keep everything else fixed.
  for (std::uint64_t x2 = 0; x2 <= 4; ++x2) {
    for (std::uint64_t y2 = 0; y2 <= 4; ++y2) {
      const RegValues config = weakly2(x2, y2);
      const PostResult result = post("IncrPair(x2,y2)", config);
      EXPECT_TRUE(result.returns_only()) << x2 << "," << y2;
      ASSERT_EQ(result.outcomes.size(), 1u) << x2 << "," << y2;
      const auto& out = result.outcomes[0].regs;
      const std::uint64_t before = x2 * 5 + y2;
      const std::uint64_t after = out[c_.x(2)] * 5 + out[c_.y(2)];
      EXPECT_EQ(after, (before + 1) % 25) << x2 << "," << y2;
      EXPECT_EQ(out[c_.x(2)] + out[c_.xb(2)], 4u);
      EXPECT_EQ(out[c_.y(2)] + out[c_.yb(2)], 4u);
      EXPECT_EQ(out[c_.R()], config[c_.R()]);
      EXPECT_EQ(out[c_.xb(1)], 1u);  // level 1 untouched
    }
  }
}

TEST_F(LemmaFixture, Lemma11aComplementDecrements) {
  // IncrPair(~x2, ~y2) increments the complement counter, i.e. decrements
  // ctr_{x2,y2} mod 25.
  const RegValues config = weakly2(2, 0);
  const PostResult result = post("IncrPair(~x2,~y2)", config);
  ASSERT_EQ(result.outcomes.size(), 1u);
  const auto& out = result.outcomes[0].regs;
  EXPECT_EQ(out[c_.x(2)] * 5 + out[c_.y(2)], 9u);  // 10 - 1
}

TEST_F(LemmaFixture, Lemma11bReversibleOnHighConfigs) {
  // The key technical property: on (i-1)-proper configs with
  // w + ~w >= N_i, every outcome of IncrPair(x, y) can be undone by
  // IncrPair(~x, ~y), and registers outside Q_i are untouched.
  const std::vector<RegValues> configs = {
      weakly2(1, 3),
      regs({0, 1, 0, 1, 3, 4, 2, 5, 0, 0, 0, 0, 0}),  // 2-high
      regs({0, 1, 0, 1, 0, 5, 4, 1, 0, 0, 0, 0, 2}),  // 2-high, extremes
  };
  for (const RegValues& config : configs) {
    const PostResult forward = post("IncrPair(x2,y2)", config);
    EXPECT_FALSE(forward.can_diverge);
    for (const auto& outcome : forward.outcomes) {
      for (progmodel::Reg r : {c_.x(1), c_.xb(1), c_.y(1), c_.yb(1), c_.R()})
        EXPECT_EQ(outcome.regs[r], config[r]);
      const PostResult backward = post("IncrPair(~x2,~y2)", outcome.regs);
      EXPECT_TRUE(backward.contains(config, -1))
          << "IncrPair must be reversible";
    }
  }
}

TEST_F(LemmaFixture, Lemma11cRobustAtLowerLevels) {
  // 1-high config: IncrPair at level 2 terminates or restarts and keeps
  // 1-highness.
  const RegValues high1 = regs({1, 1, 2, 0, 1, 3, 0, 4, 0, 0, 0, 0, 0});
  ASSERT_TRUE(is_i_high(c_, high1, 1));
  const PostResult result = post("IncrPair(x2,y2)", high1);
  EXPECT_FALSE(result.can_diverge);
  for (const auto& outcome : result.outcomes)
    EXPECT_TRUE(is_i_high(c_, outcome.regs, 1));
}

// ---------------------------------------------------------------------------
// Lemma 12: Large
// ---------------------------------------------------------------------------

TEST_F(LemmaFixture, Lemma12aWeaklyProperIsReadOnly) {
  struct Case {
    const char* proc;
    RegValues config;
    bool reaches;  // C(x) >= N_i
  };
  const std::vector<Case> cases = {
      {"Large(~x1)", proper3(0), true},
      {"Large(x1)", proper3(0), false},
      {"Large(~x2)", weakly2(0, 0), true},
      {"Large(~x2)", weakly2(1, 0), false},
      {"Large(y2)", weakly2(0, 4), true},
      {"Large(y2)", weakly2(0, 3), false},
  };
  for (const auto& [proc, config, reaches] : cases) {
    const PostResult result = post(proc, config);
    EXPECT_TRUE(result.returns_only()) << proc;
    EXPECT_TRUE(result.contains(config, 0)) << proc << ": false always";
    EXPECT_EQ(result.contains(config, 1), reaches) << proc;
    EXPECT_EQ(result.outcomes.size(), reaches ? 2u : 1u) << proc;
  }
}

TEST_F(LemmaFixture, Lemma12bExchangesSurplus) {
  // (i-1)-proper, x2 = 6 >= N_2: true is possible with C'(x2) = ~x2 + N_2,
  // C'(~x2) = x2 - N_2.
  const RegValues config = regs({0, 1, 0, 1, 6, 1, 0, 4, 0, 0, 0, 0, 0});
  const PostResult result = post("Large(x2)", config);
  EXPECT_TRUE(result.returns_only());
  EXPECT_TRUE(result.contains(config, 0));
  const RegValues exchanged = regs({0, 1, 0, 1, 5, 2, 0, 4, 0, 0, 0, 0, 0});
  EXPECT_TRUE(result.contains(exchanged, 1));
  EXPECT_EQ(result.outcomes.size(), 2u);
}

TEST_F(LemmaFixture, Lemma12bLevel3WalksTheLevel2Counter) {
  // Large at level 3 exercises the full nested machinery: a random walk on
  // the level-2 counter with zero-checks recursing to level 1.
  const RegValues config = proper3(2);
  const PostResult result = post("Large(~x3)", config, 6'000'000);
  EXPECT_TRUE(result.returns_only());
  EXPECT_TRUE(result.contains(config, 1)) << "~x3 = 25 >= N_3";
  EXPECT_TRUE(result.contains(config, 0));
  EXPECT_EQ(result.outcomes.size(), 2u);
}

TEST_F(LemmaFixture, Lemma12bFalseOnlyWhenBelowThreshold) {
  // ~x3 = 7 < N_3 = 25 (only the barred level-3 Larges are instantiated —
  // the unbarred ones are never called from Main's call graph).
  const RegValues config = regs({0, 1, 0, 1, 0, 4, 0, 4, 18, 7, 0, 25, 0});
  const PostResult result = post("Large(~x3)", config, 6'000'000);
  EXPECT_TRUE(result.returns_only());
  ASSERT_EQ(result.outcomes.size(), 1u) << "~x3 = 7 < N_3 = 25";
  EXPECT_TRUE(result.contains(config, 0));
}

TEST_F(LemmaFixture, Lemma12cRobustOnHighConfigs) {
  // 2-high: Large at level 3 must terminate (the reversibility of IncrPair
  // lets the walk retrace) or restart; registers stay 2-high.
  const RegValues high2 = regs({0, 1, 0, 1, 3, 4, 2, 5, 0, 3, 0, 0, 0});
  ASSERT_TRUE(is_i_high(c_, high2, 2));
  const PostResult result = post("Large(~x3)", high2, 6'000'000);
  EXPECT_FALSE(result.can_diverge);
  EXPECT_TRUE(result.can_restart);
  for (const auto& outcome : result.outcomes)
    EXPECT_TRUE(is_i_high(c_, outcome.regs, 2));
}

TEST_F(LemmaFixture, Lemma12RestartsWhenCounterNotZeroed) {
  // Large(x) for i > 1 first demands Zero(x_{i-1}) and Zero(y_{i-1}):
  // a nonzero level-2 digit forces a restart.
  const RegValues config = regs({0, 1, 0, 1, 2, 2, 0, 4, 5, 20, 0, 25, 0});
  const PostResult result = post("Large(~x3)", config, 6'000'000);
  EXPECT_TRUE(result.can_restart);
}

// ---------------------------------------------------------------------------
// Lemma 4: Main trichotomy (n = 1 and n = 2)
// ---------------------------------------------------------------------------

TEST(Lemma4, TrichotomyOverAllSmallConfigsN1) {
  const Construction c = build_construction(1);
  const FlatProgram flat = FlatProgram::compile(c.program);
  for (std::uint64_t m = 0; m <= 5; ++m) {
    for (const auto& config : progmodel::all_compositions(m, 5)) {
      const MainAnalysis analysis = progmodel::analyse_main(flat, config);
      ASSERT_FALSE(analysis.limit_hit);
      EXPECT_FALSE(analysis.has_mixed_bscc)
          << "Main may only restart or stabilise";

      bool low_and_empty = false;
      for (int j = 1; j <= c.n; ++j)
        low_and_empty |= is_i_low(c, config, j) && is_i_empty(c, config, j + 1);
      const bool proper = is_i_proper(c, config, c.n);

      EXPECT_EQ(analysis.may_stabilise_false, low_and_empty)
          << "m=" << m << " config index";
      EXPECT_EQ(analysis.may_stabilise_true, proper);
      if (!low_and_empty && !proper) {
        EXPECT_TRUE(analysis.always_restarts());
      }
    }
  }
}

TEST(Lemma4, TrichotomyOnStructuredConfigsN2) {
  const Construction c = build_construction(2);
  const FlatProgram flat = FlatProgram::compile(c.program);
  ExploreLimits limits;
  limits.max_nodes = 4'000'000;

  struct Case {
    RegValues config;
    enum { kFalse, kTrue, kRestart } expected;
  };
  const std::vector<Case> cases = {
      // good accepting: 2-proper (+ R surplus)
      {{0, 1, 0, 1, 0, 4, 0, 4, 0}, Case::kTrue},
      {{0, 1, 0, 1, 0, 4, 0, 4, 3}, Case::kTrue},
      // good rejecting: j-low and (j+1)-empty
      {{0, 0, 0, 0, 0, 0, 0, 0, 0}, Case::kFalse},  // 1-low, 2-empty (m=0)
      {{0, 1, 0, 0, 0, 0, 0, 0, 0}, Case::kFalse},  // 1-low, 2-empty
      {{0, 1, 0, 1, 0, 3, 0, 4, 0}, Case::kFalse},  // 2-low, 3-empty
      {{0, 1, 0, 1, 0, 1, 0, 0, 0}, Case::kFalse},
      // bad: everything else restarts
      {{0, 1, 0, 1, 0, 3, 0, 4, 1}, Case::kRestart},  // 2-low but R occupied
      {{0, 1, 0, 1, 2, 4, 1, 4, 0}, Case::kRestart},  // 2-high
      {{1, 1, 0, 1, 0, 0, 0, 0, 0}, Case::kRestart},  // 1-high
      {{0, 2, 0, 1, 0, 0, 0, 0, 0}, Case::kRestart},  // ~x1 inflated
      {{0, 0, 0, 0, 0, 4, 0, 4, 0}, Case::kRestart},  // level 1 empty
  };
  for (std::size_t index = 0; index < cases.size(); ++index) {
    const auto& [config, expected] = cases[index];
    const MainAnalysis analysis = progmodel::analyse_main(flat, config, limits);
    ASSERT_FALSE(analysis.limit_hit) << "case " << index;
    EXPECT_FALSE(analysis.has_mixed_bscc) << "case " << index;
    switch (expected) {
      case Case::kTrue:
        EXPECT_TRUE(analysis.may_stabilise_true) << "case " << index;
        EXPECT_FALSE(analysis.may_stabilise_false) << "case " << index;
        break;
      case Case::kFalse:
        EXPECT_TRUE(analysis.may_stabilise_false) << "case " << index;
        EXPECT_FALSE(analysis.may_stabilise_true) << "case " << index;
        break;
      case Case::kRestart:
        EXPECT_TRUE(analysis.always_restarts()) << "case " << index;
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Theorem 3 at program level, n = 2 (randomized; exhaustive is n = 1 —
// see test_construction.cpp)
// ---------------------------------------------------------------------------


TEST(Theorem3, ExhaustiveRejectionN2) {
  // Full restart nondeterminism at n = 2: for m well below k = 10, every
  // fair run from every initial distribution stabilises to reject — no
  // spurious acceptance exists anywhere in the reachable space.
  const Construction c = build_construction(2);
  const FlatProgram flat = FlatProgram::compile(c.program);
  for (std::uint64_t m = 0; m <= 6; ++m) {
    std::vector<std::uint64_t> regs(9, 0);
    regs[8] = m;
    ExploreLimits limits;
    limits.max_nodes = 6'000'000;
    const auto result = progmodel::decide(flat, regs, limits);
    ASSERT_TRUE(result.stabilises()) << "m=" << m;
    EXPECT_FALSE(result.output()) << "m=" << m;
  }
}

TEST(Theorem3, RandomizedBoundaryN2) {
  const Construction c = build_construction(2);
  const FlatProgram flat = FlatProgram::compile(c.program);
  const std::uint64_t k = Construction::threshold_u64(2);  // 10
  for (std::uint64_t m : {k - 1, k}) {
    std::vector<std::uint64_t> regs(9, 0);
    regs[8] = m;
    progmodel::Runner runner(flat, regs, 12345 + m);
    progmodel::RunOptions options;
    options.stable_window = 3'000'000;
    options.max_steps = 600'000'000;
    const progmodel::RunResult result = runner.run(options);
    ASSERT_TRUE(result.stabilised) << "m=" << m;
    EXPECT_FALSE(result.hung);
    EXPECT_EQ(result.output, m >= k) << "m=" << m;
    EXPECT_GT(result.restarts, 0u) << "detect-restart loop must engage";
  }
}


// ---------------------------------------------------------------------------
// Lemma 4 at n = 2, exhaustively over every small configuration
// ---------------------------------------------------------------------------

class Lemma4SweepN2 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma4SweepN2, TrichotomyOverAllCompositions) {
  // Every distribution of m agents over the 9 registers must fall into
  // exactly the case Lemma 4 predicts from its classification.
  const std::uint64_t m = GetParam();
  const Construction c = build_construction(2);
  const FlatProgram flat = FlatProgram::compile(c.program);
  ExploreLimits limits;
  limits.max_nodes = 2'000'000;
  for (const auto& config : progmodel::all_compositions(m, 9)) {
    const MainAnalysis analysis =
        progmodel::analyse_main(flat, config, limits);
    ASSERT_FALSE(analysis.limit_hit);
    ASSERT_FALSE(analysis.has_mixed_bscc);

    bool low_and_empty = false;
    for (int j = 1; j <= c.n; ++j)
      low_and_empty |=
          is_i_low(c, config, j) && is_i_empty(c, config, j + 1);
    const bool proper = is_i_proper(c, config, c.n);

    std::string shape;
    for (std::uint64_t v : config) shape += std::to_string(v) + ",";
    EXPECT_EQ(analysis.may_stabilise_false, low_and_empty) << shape;
    EXPECT_EQ(analysis.may_stabilise_true, proper) << shape;
    if (!low_and_empty && !proper) {
      EXPECT_TRUE(analysis.always_restarts()) << shape;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Totals, Lemma4SweepN2,
                         ::testing::Values(0, 1, 2, 3, 4));

// ---------------------------------------------------------------------------
// Level-3 procedures (inside an n = 4 instance)
// ---------------------------------------------------------------------------

class Level3Fixture : public ::testing::Test {
 protected:
  Level3Fixture()
      : c_(build_construction(4)), flat_(FlatProgram::compile(c_.program)) {}

  PostResult post(const std::string& proc, const RegValues& regs,
                  std::uint64_t max_nodes = 6'000'000) const {
    ExploreLimits limits;
    limits.max_nodes = max_nodes;
    PostResult result =
        progmodel::explore_post(flat_, c_.proc(proc), regs, limits);
    EXPECT_FALSE(result.limit_hit) << proc;
    return result;
  }

  /// 3-proper prefix (N = 1, 4, 25) with chosen level-4 and R values.
  RegValues with_level4(std::uint64_t x4, std::uint64_t xb4, std::uint64_t y4,
                        std::uint64_t yb4, std::uint64_t r = 0) const {
    return {0, 1, 0, 1, 0, 4, 0, 4, 0, 25, 0, 25, x4, xb4, y4, yb4, r};
  }

  Construction c_;
  FlatProgram flat_;
};

TEST_F(Level3Fixture, ZeroAtLevel3IsDeterministicOnWeaklyProper) {
  // weakly 3-proper with x3 = 7: Zero(x3) returns false; with x3 = 0: true.
  RegValues nonzero = {0, 1, 0, 1, 0, 4, 0, 4, 7, 18, 0, 25, 0, 0, 0, 0, 0};
  const PostResult r1 = post("Zero(x3)", nonzero);
  EXPECT_TRUE(r1.returns_only());
  ASSERT_EQ(r1.outcomes.size(), 1u);
  EXPECT_TRUE(r1.contains(nonzero, 0));

  RegValues zero = {0, 1, 0, 1, 0, 4, 0, 4, 0, 25, 0, 25, 0, 0, 0, 0, 0};
  const PostResult r2 = post("Zero(x3)", zero);
  EXPECT_TRUE(r2.returns_only());
  ASSERT_EQ(r2.outcomes.size(), 1u);
  EXPECT_TRUE(r2.contains(zero, 1));
}

TEST_F(Level3Fixture, IncrPairAtLevel3WrapsAtN4) {
  // ctr_{x3,y3} = x3 * 26 + y3 (base N_3 + 1 = 26) increments mod 676.
  RegValues config = {0, 1, 0, 1, 0, 4, 0, 4, 3, 22, 25, 0, 0, 0, 0, 0, 0};
  const PostResult result = post("IncrPair(x3,y3)", config);
  EXPECT_TRUE(result.returns_only());
  ASSERT_EQ(result.outcomes.size(), 1u);
  const auto& out = result.outcomes[0].regs;
  // before: 3 * 26 + 25 = 103; after: 104 = 4 * 26 + 0.
  EXPECT_EQ(out[c_.x(3)], 4u);
  EXPECT_EQ(out[c_.y(3)], 0u);
  EXPECT_EQ(out[c_.xb(3)], 21u);
  EXPECT_EQ(out[c_.yb(3)], 25u);
}

TEST_F(Level3Fixture, IncrPairAtLevel3IsReversible) {
  RegValues config = {0, 1, 0, 1, 0, 4, 0, 4, 2, 23, 4, 21, 0, 0, 0, 0, 0};
  const PostResult forward = post("IncrPair(x3,y3)", config);
  EXPECT_FALSE(forward.can_diverge);
  for (const auto& outcome : forward.outcomes) {
    const PostResult backward = post("IncrPair(~x3,~y3)", outcome.regs);
    EXPECT_TRUE(backward.contains(config, -1));
  }
}

TEST_F(Level3Fixture, LargeAtLevel4PreconditionChecks) {
  // The full 676-step walk of Large at level 4 is beyond exhaustive reach
  // (each counter position spawns the entire level-1..3 machinery), but its
  // entry behaviour is not: a nonzero level-3 digit forces a restart
  // before the walk begins (Large's first guard).
  RegValues dirty = with_level4(0, 676, 0, 676);
  dirty[c_.x(3)] = 2;
  dirty[c_.xb(3)] = 23;
  const PostResult result = post("Large(~x4)", dirty, 2'000'000);
  EXPECT_TRUE(result.can_restart);
}

}  // namespace
}  // namespace ppde::czerner
