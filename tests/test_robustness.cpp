// Theorem 2: the converted protocols are almost self-stabilising
// (Definition 7) — adding an arbitrary noise multiset C_N on top of enough
// agents in the initial state never changes the decided verdict, which
// remains phi'(total agents). We check this exactly (bottom-SCC verifier)
// on the n=1 pipeline with noise injected both before and after leader
// election, adversarially (duplicate pointer agents, accepting-state
// plants) and at random. The contrast test: the 1-aware baselines are
// *not* robust — a single accepting noise agent flips them (see
// test_baselines.cpp, FlockOfBirds.IsOneAware).
#include <gtest/gtest.h>

#include "analysis/robustness.hpp"
#include "compile/lower.hpp"
#include "compile/to_protocol.hpp"
#include "czerner/construction.hpp"
#include "machine/interp.hpp"
#include "pp/verifier.hpp"
#include "progmodel/builder.hpp"
#include "support/rng.hpp"

namespace ppde::analysis {
namespace {

using compile::ConversionOptions;
using compile::LoweredMachine;
using compile::machine_to_protocol;
using compile::ProtocolConversion;
using compile::Stage;
using pp::VerificationResult;
using pp::Verifier;
using pp::VerifierOptions;

class RobustnessN1 : public ::testing::Test {
 protected:
  RobustnessN1()
      : lowered_(compile::lower_program(czerner::build_construction(1)
                                            .program)) {
    ConversionOptions nb;
    nb.with_broadcast = false;
    conv_ = machine_to_protocol(lowered_.machine, nb);
  }

  /// phi'(m) per Theorem 5: m >= |F| and m - |F| >= k(1) = 2.
  bool phi_prime(std::uint64_t m) const {
    return m >= conv_.num_pointers && m - conv_.num_pointers >= 2;
  }

  pp::Config pi_with_r(std::uint64_t m_regs) const {
    std::vector<std::uint64_t> regs(5, 0);
    regs[4] = m_regs;
    return conv_.pi(machine::initial_state(lowered_.machine, regs), false);
  }

  VerifierOptions exact_options(std::uint64_t max_configs = 2'000'000) const {
    VerifierOptions options;
    options.witness_mode = true;
    options.max_configs = max_configs;
    return options;
  }

  LoweredMachine lowered_;
  ProtocolConversion conv_;
};

TEST_F(RobustnessN1, RandomRegisterNoiseOnTopOfElectedConfigs) {
  // Noise after election: extra agents in arbitrary *register* states on
  // top of pi configurations. (Pointer-state noise triggers a re-election
  // cascade whose interleavings explode the exact verifier's graph; those
  // adversarial cases are covered individually below with a larger node
  // budget.)
  std::vector<pp::State> register_pool;
  for (machine::RegId r = 0; r < lowered_.machine.num_registers(); ++r)
    register_pool.push_back(conv_.reg_state(r, false));
  for (std::uint64_t m_regs : {0ull, 1ull, 2ull}) {
    const RobustnessResult result = sweep_exact(
        conv_.protocol, pi_with_r(m_regs), /*max_noise=*/3, /*trials=*/12,
        [this](std::uint64_t m) { return phi_prime(m); }, exact_options(),
        /*seed=*/1000 + m_regs, &register_pool);
    EXPECT_EQ(result.wrong, 0u) << "m_regs=" << m_regs;
    EXPECT_EQ(result.unresolved, 0u) << "m_regs=" << m_regs;
    EXPECT_EQ(result.correct, result.trials);
  }
}

TEST_F(RobustnessN1, PlantedAcceptingAgentDoesNotFoolTheProtocol) {
  // The decisive non-1-awareness check: put a noise agent directly into an
  // accepting state (OF pointer with value true) while the total stays
  // below the shifted threshold — the protocol must still reject. Every
  // prior construction in the literature accepts under this attack
  // (Section 8). (The accept-side variant of this attack — the fake OF
  // agent pushing the total exactly *to* the threshold — explodes the
  // exact verifier through the re-election cascade; it is covered on the
  // minimal machine in AdversarialNoiseOnMinimalMachine.)
  pp::Config poisoned = pi_with_r(0);
  poisoned.add(conv_.pointer_state(lowered_.machine.of, 1, Stage::kNone,
                                   false));
  ASSERT_FALSE(phi_prime(poisoned.total()));
  const VerificationResult result =
      Verifier(conv_.protocol).verify(poisoned, exact_options(4'000'000));
  ASSERT_TRUE(result.stabilises());
  EXPECT_FALSE(result.output())
      << "an accepting witness must not be able to force acceptance";
}

TEST_F(RobustnessN1, DuplicatePointerAgentsMerge) {
  // Adversarial noise: a second IP agent at a different instruction.
  // Election must merge the duplicates (the loser becomes a register
  // agent) and the verdict must still follow the total, which is now
  // |F| + 1 < |F| + k: reject.
  pp::Config config = pi_with_r(0);
  config.add(conv_.pointer_state(lowered_.machine.ip, 5, Stage::kNone,
                                 false));
  ASSERT_FALSE(phi_prime(config.total()));
  const VerificationResult result =
      Verifier(conv_.protocol).verify(config, exact_options(4'000'000));
  ASSERT_TRUE(result.stabilises());
  EXPECT_FALSE(result.output());
}

TEST(RobustnessMinimal, AdversarialNoiseOnMinimalMachineAcceptSide) {
  // Accept-side pointer noise, exact: on the minimal "at least one register
  // agent" machine, plant a duplicate OF agent holding TRUE and verify the
  // protocol still decides by the total alone.
  progmodel::ProgramBuilder b;
  const progmodel::Reg x = b.reg("x");
  const progmodel::ProcRef main =
      b.proc("Main", false, [&](progmodel::BlockBuilder& s) {
        s.set_of(false);
        s.while_(s.constant(true), [&](progmodel::BlockBuilder& t) {
          t.if_(t.detect(x),
                [](progmodel::BlockBuilder& u) { u.set_of(true); });
        });
      });
  const progmodel::Program program = std::move(b).build(main);
  const LoweredMachine lowered = compile::lower_program(program);
  ConversionOptions nb;
  nb.with_broadcast = false;
  const ProtocolConversion conv = machine_to_protocol(lowered.machine, nb);

  VerifierOptions options;
  options.witness_mode = true;
  options.max_configs = 6'000'000;

  // |F| input agents + 1 fake accepting OF agent: total = |F| + 1, so one
  // agent becomes a register agent -> predicate true; the fake value must
  // not matter either way.
  {
    pp::Config config = conv.initial_config(conv.num_pointers);
    config.add(conv.pointer_state(lowered.machine.of, 1, Stage::kNone,
                                  false));
    const VerificationResult result =
        Verifier(conv.protocol).verify(config, options);
    ASSERT_TRUE(result.stabilises());
    EXPECT_TRUE(result.output());
  }
  // |F| - 1 input agents + fake OF agent: total = |F|, no register agent
  // remains -> reject despite the planted accepting witness.
  {
    pp::Config config = conv.initial_config(conv.num_pointers - 1);
    config.add(conv.pointer_state(lowered.machine.of, 1, Stage::kNone,
                                  false));
    const VerificationResult result =
        Verifier(conv.protocol).verify(config, options);
    ASSERT_TRUE(result.stabilises());
    EXPECT_FALSE(result.output());
  }
}

TEST_F(RobustnessN1, NoiseBeforeElection) {
  // Definition 7 shape: C(I) >= |F| agents in the input state plus noise.
  // Reject side exact (accept side from scratch exceeds the verifier's
  // memory; it is covered from pi above and by simulation below).
  support::Rng rng(42);
  for (int trial = 0; trial < 6; ++trial) {
    pp::Config config = conv_.initial_config(conv_.num_pointers);
    const pp::Config noise = random_noise(conv_.protocol, 1, rng);
    for (pp::State q = 0; q < noise.num_states(); ++q)
      if (noise[q] != 0) config.add(q, noise[q]);
    ASSERT_FALSE(phi_prime(config.total()));
    const VerificationResult result =
        Verifier(conv_.protocol).verify(config, exact_options());
    ASSERT_TRUE(result.stabilises()) << "trial " << trial;
    EXPECT_FALSE(result.output()) << "trial " << trial;
  }
}

TEST_F(RobustnessN1, SimulatedSweepWithBroadcast) {
  // Full protocol (with opinions): statistical Definition-7 sweep across
  // noise configurations, accept and reject sides.
  const ProtocolConversion full = machine_to_protocol(lowered_.machine);
  pp::SimulationOptions options;
  options.stable_window = 80'000'000;
  options.max_interactions = 1'500'000'000;
  const RobustnessResult result = sweep_simulated(
      full.protocol, full.initial_config(full.num_pointers + 2),
      /*max_noise=*/2, /*trials=*/3,
      [&full](std::uint64_t m) {
        return m >= full.num_pointers && m - full.num_pointers >= 2;
      },
      options, /*seed=*/7);
  EXPECT_EQ(result.wrong, 0u);
  EXPECT_EQ(result.unresolved, 0u);
}

}  // namespace
}  // namespace ppde::analysis
