// Tests for the Section-6 construction: constants, register layout,
// configuration classification (Figure 2), size bounds (Theorem 3), and
// first semantic checks via the exhaustive explorer.
#include "czerner/construction.hpp"

#include <gtest/gtest.h>

#include "czerner/classify.hpp"
#include "progmodel/explore.hpp"
#include "progmodel/flat.hpp"

namespace ppde::czerner {
namespace {

using progmodel::DecisionResult;
using progmodel::ExploreLimits;
using progmodel::FlatProgram;

// -- constants ---------------------------------------------------------------

TEST(Constants, LevelConstantsFollowRecurrence) {
  // N_1 = 1, N_{i+1} = (N_i + 1)^2: 1, 4, 25, 676, 458329, ...
  EXPECT_EQ(Construction::level_constant_u64(1), 1u);
  EXPECT_EQ(Construction::level_constant_u64(2), 4u);
  EXPECT_EQ(Construction::level_constant_u64(3), 25u);
  EXPECT_EQ(Construction::level_constant_u64(4), 676u);
  EXPECT_EQ(Construction::level_constant_u64(5), 458329u);
  EXPECT_EQ(Construction::level_constant_u64(6), 210066388900u);
}

TEST(Constants, ThresholdIsTwiceTheSum) {
  EXPECT_EQ(Construction::threshold_u64(1), 2u);
  EXPECT_EQ(Construction::threshold_u64(2), 10u);
  EXPECT_EQ(Construction::threshold_u64(3), 60u);
  EXPECT_EQ(Construction::threshold_u64(4), 1412u);
}

TEST(Constants, ThresholdIsDoublyExponential) {
  // Theorem 3: k(n) >= 2^(2^(n-1)).
  for (int n = 1; n <= 14; ++n) {
    const bignum::Nat k = Construction::threshold(n);
    EXPECT_GE(k, bignum::Nat::pow2(std::uint64_t{1} << (n - 1))) << "n=" << n;
  }
}

TEST(Constants, LevelConstantOverflowsU64AtSeven) {
  EXPECT_NO_THROW(Construction::level_constant_u64(6));
  EXPECT_THROW(Construction::level_constant_u64(7), std::overflow_error);
  // But the exact value is fine:
  EXPECT_EQ(Construction::level_constant(7).to_decimal(),
            "44127887745906175987801");
}

// -- structure ---------------------------------------------------------------

TEST(Structure, RegisterLayout) {
  const Construction c = build_construction(3);
  EXPECT_EQ(c.num_registers(), 13u);
  EXPECT_EQ(c.program.registers[c.x(1)], "x1");
  EXPECT_EQ(c.program.registers[c.xb(1)], "~x1");
  EXPECT_EQ(c.program.registers[c.y(2)], "y2");
  EXPECT_EQ(c.program.registers[c.yb(3)], "~y3");
  EXPECT_EQ(c.program.registers[c.R()], "R");
}

TEST(Structure, BarIsAnInvolution) {
  const Construction c = build_construction(2);
  for (progmodel::Reg r = 0; r < 8; ++r) {
    EXPECT_EQ(c.bar(c.bar(r)), r);
    EXPECT_NE(c.bar(r), r);
    EXPECT_EQ(c.level(c.bar(r)), c.level(r));
  }
  EXPECT_THROW(c.bar(c.R()), std::out_of_range);
}

TEST(Structure, Levels) {
  const Construction c = build_construction(2);
  EXPECT_EQ(c.level(c.x(1)), 1);
  EXPECT_EQ(c.level(c.yb(2)), 2);
  EXPECT_EQ(c.level(c.R()), 3);
}

TEST(Structure, GeneratedProceduresForN1) {
  const Construction c = build_construction(1);
  EXPECT_NO_THROW(c.proc("Main"));
  EXPECT_NO_THROW(c.proc("AssertProper(1)"));
  EXPECT_NO_THROW(c.proc("AssertEmpty(2)"));
  EXPECT_NO_THROW(c.proc("Large(~x1)"));
  EXPECT_NO_THROW(c.proc("Large(~y1)"));
  EXPECT_THROW(c.proc("Zero(x1)"), std::out_of_range)
      << "Zero is never needed at the top level for n=1";
}

TEST(Structure, GeneratedProceduresForN2) {
  const Construction c = build_construction(2);
  EXPECT_NO_THROW(c.proc("Zero(x1)"));
  EXPECT_NO_THROW(c.proc("Zero(~x1)"));
  EXPECT_NO_THROW(c.proc("IncrPair(x1,y1)"));
  EXPECT_NO_THROW(c.proc("IncrPair(~x1,~y1)"));
  EXPECT_NO_THROW(c.proc("Large(~x2)"));
  EXPECT_NO_THROW(c.proc("AssertEmpty(3)"));
}

TEST(Structure, ProgramSizeGrowsLinearly) {
  // Theorem 3: size O(n). Check exact linear growth of each component.
  const auto s2 = build_construction(2).program.size();
  const auto s3 = build_construction(3).program.size();
  const auto s4 = build_construction(4).program.size();
  const auto s5 = build_construction(5).program.size();
  EXPECT_EQ(s3.num_registers - s2.num_registers, 4u);
  EXPECT_EQ(s4.num_registers - s3.num_registers, 4u);
  // Per-level instruction increment is eventually constant.
  const auto d34 = s4.num_instructions - s3.num_instructions;
  const auto d45 = s5.num_instructions - s4.num_instructions;
  EXPECT_EQ(d34, d45);
  // Swap-size: only x <-> ~x pairs, 2 ordered pairs per register pair.
  EXPECT_EQ(s2.swap_size, 8u);
  EXPECT_EQ(s3.swap_size, 12u);
  EXPECT_EQ(s4.swap_size, 16u);
}

TEST(Structure, ValidatesAndPrints) {
  const Construction c = build_construction(3);
  EXPECT_NO_THROW(c.program.validate());
  const std::string text = c.program.to_string();
  EXPECT_NE(text.find("procedure Main"), std::string::npos);
  EXPECT_NE(text.find("procedure Large(~x3)"), std::string::npos);
}

// -- classification (Figure 2) -------------------------------------------------

class ClassifyN3 : public ::testing::Test {
 protected:
  ClassifyN3() : c_(build_construction(3)) {}

  RegValues regs(std::initializer_list<std::uint64_t> values) {
    RegValues result(values);
    EXPECT_EQ(result.size(), c_.num_registers());
    return result;
  }

  Construction c_;
};

TEST_F(ClassifyN3, ProperConfig) {
  // Layout per level: x, ~x, y, ~y; N = 1, 4, 25.
  const RegValues r = regs({0, 1, 0, 1, 0, 4, 0, 4, 0, 25, 0, 25, 7});
  EXPECT_TRUE(is_i_proper(c_, r, 3));
  EXPECT_TRUE(is_i_proper(c_, r, 2));
  EXPECT_TRUE(is_i_proper(c_, r, 1));
  EXPECT_TRUE(is_weakly_i_proper(c_, r, 3));
  EXPECT_FALSE(is_i_low(c_, r, 3));
  EXPECT_FALSE(is_i_high(c_, r, 3));
}

TEST_F(ClassifyN3, WeaklyProperButNotProper) {
  // Figure 2 row 2 shape: level-2 invariant holds but digits are nonzero.
  const RegValues r = regs({0, 1, 0, 1, 3, 1, 2, 2, 0, 25, 0, 25, 0});
  EXPECT_TRUE(is_i_proper(c_, r, 1));
  EXPECT_FALSE(is_i_proper(c_, r, 2));
  EXPECT_TRUE(is_weakly_i_proper(c_, r, 2));
  EXPECT_TRUE(is_i_high(c_, r, 2));  // sums equal N_2: also 2-high
}

TEST_F(ClassifyN3, LowConfig) {
  const RegValues r = regs({0, 1, 0, 1, 0, 1, 0, 4, 0, 0, 0, 0, 0});
  EXPECT_TRUE(is_i_low(c_, r, 2));
  EXPECT_TRUE(is_i_empty(c_, r, 3));
  EXPECT_FALSE(is_i_high(c_, r, 2));
}

TEST_F(ClassifyN3, HighConfig) {
  const RegValues r = regs({0, 1, 0, 1, 3, 4, 7, 0, 0, 0, 0, 0, 0});
  EXPECT_TRUE(is_i_high(c_, r, 2));
  EXPECT_FALSE(is_i_low(c_, r, 2));
}

TEST_F(ClassifyN3, NeitherLowNorHigh) {
  // x_2 = 0 but y-side sum exceeds... x-side sum below N_2, y-side above.
  const RegValues r = regs({0, 1, 0, 1, 0, 1, 0, 9, 0, 0, 0, 0, 0});
  EXPECT_FALSE(is_i_low(c_, r, 2));   // ~y_2 = 9 > N_2
  EXPECT_FALSE(is_i_high(c_, r, 2));  // x_2 + ~x_2 = 1 < N_2
}

TEST_F(ClassifyN3, EmptyLevels) {
  const RegValues r = regs({2, 4, 8, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0});
  EXPECT_TRUE(is_i_empty(c_, r, 2));
  EXPECT_FALSE(is_i_empty(c_, r, 1));
  const RegValues with_r = regs({2, 4, 8, 3, 0, 0, 0, 0, 0, 0, 0, 0, 1});
  EXPECT_FALSE(is_i_empty(c_, with_r, 2)) << "R counts for i-emptiness";
}

TEST_F(ClassifyN3, ClassifyLabels) {
  const auto labels = classify(c_, proper_config(c_, 0));
  EXPECT_NE(std::find(labels.begin(), labels.end(), "3-proper"), labels.end());
}

// -- good configurations --------------------------------------------------------

TEST(GoodConfig, ProperAboveThreshold) {
  const Construction c = build_construction(2);
  const std::uint64_t k = Construction::threshold_u64(2);  // 10
  for (std::uint64_t m : {k, k + 1, k + 5}) {
    const RegValues regs = good_config(c, m);
    EXPECT_EQ(total_agents(regs), m);
    EXPECT_TRUE(is_i_proper(c, regs, 2));
  }
}

TEST(GoodConfig, LowAndEmptyBelowThreshold) {
  const Construction c = build_construction(2);
  for (std::uint64_t m = 0; m < 10; ++m) {
    const RegValues regs = good_config(c, m);
    EXPECT_EQ(total_agents(regs), m) << "m=" << m;
    bool found = false;
    for (int j = 1; j <= 2 && !found; ++j)
      found = is_i_low(c, regs, j) && is_i_empty(c, regs, j + 1);
    EXPECT_TRUE(found) << "m=" << m << ": must be j-low and (j+1)-empty";
  }
}

TEST(GoodConfig, MatchesTheorem3CaseSplitForN3) {
  const Construction c = build_construction(3);
  const std::uint64_t k = Construction::threshold_u64(3);  // 60
  for (std::uint64_t m = 0; m <= 70; ++m) {
    const RegValues regs = good_config(c, m);
    ASSERT_EQ(total_agents(regs), m);
    if (m >= k) {
      EXPECT_TRUE(is_i_proper(c, regs, 3)) << "m=" << m;
    } else {
      bool found = false;
      for (int j = 1; j <= 3 && !found; ++j)
        found = is_i_low(c, regs, j) && is_i_empty(c, regs, j + 1);
      EXPECT_TRUE(found) << "m=" << m;
    }
  }
}

// -- first semantics checks (n = 1) ---------------------------------------------

TEST(SemanticsN1, LargeBaseCase) {
  // Large(~x_1) on a weakly 1-proper config: Lemma 12a — post = {(C, false),
  // (C, C(~x1) >= 1)}.
  const Construction c = build_construction(1);
  const FlatProgram flat = FlatProgram::compile(c.program);
  {
    // ~x1 = 1 (proper): may return true or false, registers unchanged.
    std::vector<std::uint64_t> regs = {0, 1, 0, 1, 0};
    const auto post = progmodel::explore_post(flat, c.proc("Large(~x1)"), regs);
    EXPECT_TRUE(post.returns_only());
    EXPECT_TRUE(post.contains(regs, 1));
    EXPECT_TRUE(post.contains(regs, 0));
    EXPECT_EQ(post.outcomes.size(), 2u);
  }
  {
    // ~x1 = 0: only false.
    std::vector<std::uint64_t> regs = {0, 0, 0, 1, 0};
    const auto post = progmodel::explore_post(flat, c.proc("Large(~x1)"), regs);
    EXPECT_TRUE(post.returns_only());
    EXPECT_EQ(post.outcomes.size(), 1u);
    EXPECT_TRUE(post.contains(regs, 0));
  }
  {
    // ~x1 = 3 (1-high direction): true swaps surplus into x1 (Lemma 12b).
    const auto post = progmodel::explore_post(flat, c.proc("Large(~x1)"),
                                              {0, 3, 0, 1, 0});
    EXPECT_TRUE(post.contains({2, 1, 0, 1, 0}, 1));
    EXPECT_TRUE(post.contains({0, 3, 0, 1, 0}, 0));
  }
}

TEST(SemanticsN1, DecidesThresholdTwo) {
  // Theorem 3 for n = 1: the program decides m >= k(1) = 2. Checked
  // exhaustively (restart expansion over all compositions) for all m <= 6
  // and every initial distribution of the agents.
  const Construction c = build_construction(1);
  const FlatProgram flat = FlatProgram::compile(c.program);
  for (std::uint64_t m = 0; m <= 6; ++m) {
    ExploreLimits limits;
    limits.max_nodes = 5'000'000;
    const DecisionResult result =
        progmodel::decide(flat, {0, 0, 0, 0, m}, limits);
    ASSERT_TRUE(result.stabilises()) << "m=" << m;
    EXPECT_EQ(result.output(), m >= 2) << "m=" << m;
  }
}

}  // namespace
}  // namespace ppde::czerner
