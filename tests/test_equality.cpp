// The equality variant from the paper's conclusion: the construction also
// decides phi(x) <=> x = k with O(n) states. Main watches the surplus
// register R from the accepting loop; an agent in R proves m > k and flips
// the output to false permanently.
#include <gtest/gtest.h>

#include "compile/lower.hpp"
#include "compile/to_protocol.hpp"
#include "czerner/classify.hpp"
#include "czerner/construction.hpp"
#include "machine/interp.hpp"
#include "pp/verifier.hpp"
#include "progmodel/explore.hpp"
#include "progmodel/flat.hpp"
#include "progmodel/interp.hpp"

namespace ppde::czerner {
namespace {

using progmodel::DecisionResult;
using progmodel::FlatProgram;
using progmodel::MainAnalysis;

TEST(Equality, ProgramSizeStaysLinear) {
  // The variant adds a constant number of instructions, independent of n.
  const auto eq3 = build_equality_construction(3).program.size();
  const auto th3 = build_construction(3).program.size();
  const auto eq4 = build_equality_construction(4).program.size();
  const auto th4 = build_construction(4).program.size();
  EXPECT_EQ(eq3.num_instructions - th3.num_instructions,
            eq4.num_instructions - th4.num_instructions);
  EXPECT_LE(eq3.num_instructions - th3.num_instructions, 4u);
}

TEST(Equality, DecidesEqualityExhaustivelyN1) {
  // Theorem-3-style check: every fair run from every initial distribution
  // stabilises to [m == 2].
  const Construction c = build_equality_construction(1);
  const FlatProgram flat = FlatProgram::compile(c.program);
  for (std::uint64_t m = 0; m <= 6; ++m) {
    progmodel::ExploreLimits limits;
    limits.max_nodes = 5'000'000;
    const DecisionResult result =
        progmodel::decide(flat, {0, 0, 0, 0, m}, limits);
    ASSERT_TRUE(result.stabilises()) << "m=" << m;
    EXPECT_EQ(result.output(), m == 2) << "m=" << m;
  }
}

TEST(Equality, MainTrichotomyN1) {
  // Lemma-4 analogue: n-proper with empty R may stabilise true; n-proper
  // with occupied R may stabilise false (never true: fairness forces the
  // detect); low-and-empty stabilises false; everything else restarts.
  const Construction c = build_equality_construction(1);
  const FlatProgram flat = FlatProgram::compile(c.program);
  {
    const MainAnalysis a = progmodel::analyse_main(flat, {0, 1, 0, 1, 0});
    EXPECT_TRUE(a.may_stabilise_true);
    EXPECT_FALSE(a.may_stabilise_false);
    EXPECT_FALSE(a.has_mixed_bscc);
  }
  {
    const MainAnalysis a = progmodel::analyse_main(flat, {0, 1, 0, 1, 3});
    EXPECT_FALSE(a.may_stabilise_true)
        << "R occupied: fairness eventually fires the R detect";
    EXPECT_TRUE(a.may_stabilise_false);
    EXPECT_FALSE(a.has_mixed_bscc);
  }
  {
    const MainAnalysis a = progmodel::analyse_main(flat, {0, 1, 0, 0, 0});
    EXPECT_TRUE(a.may_stabilise_false);  // 1-low, 2-empty
    EXPECT_FALSE(a.may_stabilise_true);
  }
  {
    const MainAnalysis a = progmodel::analyse_main(flat, {1, 1, 0, 1, 0});
    EXPECT_TRUE(a.always_restarts());  // 1-high
  }
}

TEST(Equality, MachineLevelN1) {
  const auto lowered =
      compile::lower_program(build_equality_construction(1).program);
  machine::MachineExploreLimits limits;
  limits.max_nodes = 6'000'000;
  for (std::uint64_t m = 0; m <= 4; ++m) {
    const auto decision =
        machine::decide_machine(lowered.machine, {0, 0, 0, 0, m}, limits);
    ASSERT_TRUE(decision.stabilises()) << "m=" << m;
    EXPECT_EQ(decision.output(), m == 2) << "m=" << m;
  }
}

TEST(Equality, ProtocolLevelFromPi) {
  // Full pipeline: the converted protocol decides m_regs == 2 exactly —
  // in particular m_regs = 3 now REJECTS where the threshold variant
  // accepts.
  const auto lowered =
      compile::lower_program(build_equality_construction(1).program);
  compile::ConversionOptions nb;
  nb.with_broadcast = false;
  const auto conv = compile::machine_to_protocol(lowered.machine, nb);
  pp::VerifierOptions options;
  options.witness_mode = true;
  options.max_configs = 3'000'000;
  for (std::uint64_t m_regs = 0; m_regs <= 3; ++m_regs) {
    std::vector<std::uint64_t> regs(5, 0);
    regs[4] = m_regs;
    const auto verdict =
        pp::Verifier(conv.protocol)
            .verify(conv.pi(machine::initial_state(lowered.machine, regs),
                            false),
                    options);
    ASSERT_TRUE(verdict.stabilises()) << "m_regs=" << m_regs;
    EXPECT_EQ(verdict.output(), m_regs == 2) << "m_regs=" << m_regs;
  }
}

TEST(Equality, RandomizedBoundaryN2) {
  const Construction c = build_equality_construction(2);
  const FlatProgram flat = FlatProgram::compile(c.program);
  const std::uint64_t k = Construction::threshold_u64(2);  // 10
  for (std::uint64_t m : {k, k + 1}) {
    std::vector<std::uint64_t> regs(9, 0);
    regs[8] = m;
    progmodel::Runner runner(flat, regs, 4242 + m);
    progmodel::RunOptions options;
    options.stable_window = 3'000'000;
    options.max_steps = 900'000'000;
    const auto result = runner.run(options);
    ASSERT_TRUE(result.stabilised) << "m=" << m;
    EXPECT_EQ(result.output, m == k) << "m=" << m;
  }
}

}  // namespace
}  // namespace ppde::czerner
