// Unit tests for the support substrates every verifier stands on: the
// PRNG, the hash combinators, the shared Tarjan SCC pass, and the table
// renderer.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "analysis/tables.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"
#include "support/scc.hpp"

namespace ppde::support {
namespace {

// -- Rng ----------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowIsInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(42);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80'000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (int bucket = 0; bucket < kBuckets; ++bucket) {
    EXPECT_NEAR(counts[bucket], kDraws / kBuckets, kDraws / kBuckets / 10)
        << "bucket " << bucket;
  }
}

TEST(Rng, CoinIsFair) {
  Rng rng(5);
  int heads = 0;
  for (int i = 0; i < 100'000; ++i)
    if (rng.coin()) ++heads;
  EXPECT_NEAR(heads, 50'000, 1'500);
}

TEST(Rng, ChanceMatchesRatio) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 90'000; ++i)
    if (rng.chance(1, 3)) ++hits;
  EXPECT_NEAR(hits, 30'000, 1'200);
}

TEST(Rng, FillMatchesRepeatedCalls) {
  Rng a(77), b(77);
  std::uint64_t bulk[37];
  a.fill(bulk, 37);
  for (std::uint64_t value : bulk) ASSERT_EQ(value, b());
  // The generators are in the same state afterwards.
  EXPECT_EQ(a(), b());
}

TEST(Rng, JumpCommutesWithStepping) {
  // jump() applies a fixed power of the (linear) transition map, so
  // step-then-jump and jump-then-step land in the same state — the
  // property that makes jump() usable for carving disjoint substreams.
  Rng a(9), b(9);
  a();
  a.jump();
  b.jump();
  b();
  for (int i = 0; i < 10; ++i) ASSERT_EQ(a(), b());
  // And a jumped stream decorrelates from the original.
  Rng base(9), jumped(9);
  jumped.jump();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (base() == jumped()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UnitHelpersAreExactBitPatterns) {
  // to_unit maps raw -> [0,1), to_unit_open maps raw -> (0,1]; both are
  // pinned expressions (53-bit mantissa scaling) shared by the scalar and
  // lockstep geometric samplers — any change breaks recorded trajectories.
  EXPECT_EQ(to_unit(0), 0.0);
  EXPECT_DOUBLE_EQ(to_unit_open(0), 0x1.0p-53);
  EXPECT_EQ(to_unit_open(~std::uint64_t{0}), 1.0);
  EXPECT_LT(to_unit(~std::uint64_t{0}), 1.0);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t raw = rng();
    const double closed = to_unit(raw);
    const double open = to_unit_open(raw);
    ASSERT_GE(closed, 0.0);
    ASSERT_LT(closed, 1.0);
    ASSERT_GT(open, 0.0);
    ASSERT_LE(open, 1.0);
    // Exactly the documented expressions, bit for bit.
    ASSERT_EQ(closed, static_cast<double>(raw >> 11) * 0x1.0p-53);
    ASSERT_EQ(open, (static_cast<double>(raw >> 11) + 1.0) * 0x1.0p-53);
  }
}

TEST(Rng, StateWordsExposeTheWholeState) {
  // The lockstep SIMD stepper reads and writes the four state words
  // in place; round-tripping them must reproduce the exact stream.
  Rng a(123);
  std::uint64_t saved[4];
  for (int i = 0; i < 4; ++i) saved[i] = a.state_words()[i];
  const std::uint64_t expected = a();
  Rng b(0);
  for (int i = 0; i < 4; ++i) b.state_words()[i] = saved[i];
  EXPECT_EQ(b(), expected);
  EXPECT_EQ(b(), a());
}

// -- hashing --------------------------------------------------------------------

TEST(Hash, CombineOrderSensitive) {
  const std::uint64_t ab = hash_combine(hash_combine(0, 1), 2);
  const std::uint64_t ba = hash_combine(hash_combine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

TEST(Hash, RangeNoEasyCollisions) {
  std::set<std::uint64_t> seen;
  for (std::uint32_t a = 0; a < 40; ++a)
    for (std::uint32_t b = 0; b < 40; ++b) {
      std::vector<std::uint32_t> v = {a, b};
      seen.insert(hash_range(v));
    }
  EXPECT_EQ(seen.size(), 1600u);
}

// -- SCC -------------------------------------------------------------------------

TEST(Scc, SingleNodeNoEdge) {
  const SccResult result = tarjan_scc({{}});
  EXPECT_EQ(result.scc_count, 1u);
  EXPECT_EQ(result.bottom({{}}), std::vector<std::uint8_t>{1});
}

TEST(Scc, ChainHasOneBottom) {
  // 0 -> 1 -> 2
  const std::vector<std::vector<std::uint32_t>> g = {{1}, {2}, {}};
  const SccResult result = tarjan_scc(g);
  EXPECT_EQ(result.scc_count, 3u);
  const auto bottom = result.bottom(g);
  int bottoms = 0;
  for (std::uint8_t b : bottom) bottoms += b;
  EXPECT_EQ(bottoms, 1);
  EXPECT_TRUE(bottom[result.scc_of[2]]);
  EXPECT_FALSE(bottom[result.scc_of[0]]);
}

TEST(Scc, CycleIsOneComponent) {
  // 0 -> 1 -> 2 -> 0
  const std::vector<std::vector<std::uint32_t>> g = {{1}, {2}, {0}};
  const SccResult result = tarjan_scc(g);
  EXPECT_EQ(result.scc_count, 1u);
  EXPECT_EQ(result.scc_of[0], result.scc_of[1]);
  EXPECT_EQ(result.scc_of[1], result.scc_of[2]);
}

TEST(Scc, TwoCyclesWithBridge) {
  // {0,1} -> {2,3}: only the second cycle is bottom.
  const std::vector<std::vector<std::uint32_t>> g = {
      {1}, {0, 2}, {3}, {2}};
  const SccResult result = tarjan_scc(g);
  EXPECT_EQ(result.scc_count, 2u);
  const auto bottom = result.bottom(g);
  EXPECT_FALSE(bottom[result.scc_of[0]]);
  EXPECT_TRUE(bottom[result.scc_of[2]]);
}

TEST(Scc, SelfLoopIsItsOwnComponent) {
  const std::vector<std::vector<std::uint32_t>> g = {{0}, {0}};
  const SccResult result = tarjan_scc(g);
  EXPECT_EQ(result.scc_count, 2u);
  const auto bottom = result.bottom(g);
  EXPECT_TRUE(bottom[result.scc_of[0]]);
  EXPECT_FALSE(bottom[result.scc_of[1]]);
}

TEST(Scc, DeepChainNoStackOverflow) {
  // The iterative Tarjan must survive graphs far deeper than the C stack.
  constexpr std::uint32_t kDepth = 400'000;
  std::vector<std::vector<std::uint32_t>> g(kDepth);
  for (std::uint32_t i = 0; i + 1 < kDepth; ++i) g[i] = {i + 1};
  const SccResult result = tarjan_scc(g);
  EXPECT_EQ(result.scc_count, kDepth);
}

// -- tables ----------------------------------------------------------------------

TEST(Tables, AlignsColumns) {
  analysis::TextTable t({"a", "long header"});
  t.add_row({"wide cell", "x"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a          long header"), std::string::npos);
  EXPECT_NE(out.find("wide cell  x"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Tables, Formatters) {
  EXPECT_EQ(analysis::fmt_u64(12345), "12345");
  EXPECT_EQ(analysis::fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(analysis::fmt_double(2.0, 0), "2");
}

}  // namespace
}  // namespace ppde::support
