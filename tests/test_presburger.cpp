// Tests for quantifier-free Presburger predicates and the |phi| size
// measure used by all state-complexity statements.
#include "presburger/predicate.hpp"

#include <gtest/gtest.h>

#include "bignum/nat.hpp"

namespace ppde::presburger {
namespace {

using bignum::Nat;

std::vector<Nat> in(std::initializer_list<std::uint64_t> values) {
  std::vector<Nat> result;
  for (std::uint64_t v : values) result.emplace_back(v);
  return result;
}

TEST(Predicate, Constants) {
  EXPECT_TRUE(Predicate::constant(true)->evaluate({}));
  EXPECT_FALSE(Predicate::constant(false)->evaluate({}));
  EXPECT_EQ(Predicate::constant(true)->size(), 1u);
}

TEST(Predicate, UnaryThreshold) {
  auto phi = Predicate::unary_threshold(Nat{5});
  EXPECT_FALSE(phi->evaluate_unary(Nat{4}));
  EXPECT_TRUE(phi->evaluate_unary(Nat{5}));
  EXPECT_TRUE(phi->evaluate_unary(Nat{6}));
  EXPECT_EQ(phi->to_string(), "x0 >= 5");
}

TEST(Predicate, ThresholdSizeIsBitsOfConstant) {
  // |phi_n| for phi_n(x) <=> x >= 2^n is Theta(n): size grows linearly in n.
  const std::uint64_t s10 = Predicate::unary_threshold(Nat::pow2(10))->size();
  const std::uint64_t s20 = Predicate::unary_threshold(Nat::pow2(20))->size();
  const std::uint64_t s40 = Predicate::unary_threshold(Nat::pow2(40))->size();
  EXPECT_EQ(s20 - s10, 10u);
  EXPECT_EQ(s40 - s20, 20u);
}

TEST(Predicate, DoubleExponentialThresholdSize) {
  // x >= 2^(2^n) has size Theta(2^n): the paper's protocols have
  // O(n) = O(log |phi|) states against this measure.
  auto phi = Predicate::unary_threshold(Nat::pow2(1 << 10));
  EXPECT_GE(phi->size(), 1u << 10);
  EXPECT_LE(phi->size(), (1u << 10) + 16);
}

TEST(Predicate, MultiVariableThreshold) {
  // x - 2y >= 3.
  LinearSum sum;
  sum.terms.push_back({.variable = 0, .coefficient = 1});
  sum.terms.push_back({.variable = 1, .coefficient = -2});
  auto phi = Predicate::threshold(sum, Nat{3});
  EXPECT_TRUE(phi->evaluate(in({10, 2})));   // 10 - 4 = 6 >= 3
  EXPECT_FALSE(phi->evaluate(in({10, 4})));  // 10 - 8 = 2 < 3
  EXPECT_FALSE(phi->evaluate(in({0, 5})));   // negative sum
}

TEST(Predicate, MajorityAsThreshold) {
  // x >= y  <=>  x - y >= 0.
  LinearSum sum;
  sum.terms.push_back({.variable = 0, .coefficient = 1});
  sum.terms.push_back({.variable = 1, .coefficient = -1});
  auto phi = Predicate::threshold(sum, Nat{0});
  EXPECT_TRUE(phi->evaluate(in({3, 3})));
  EXPECT_TRUE(phi->evaluate(in({4, 3})));
  EXPECT_FALSE(phi->evaluate(in({2, 3})));
}

TEST(Predicate, Remainder) {
  LinearSum sum;
  sum.terms.push_back({.variable = 0, .coefficient = 1});
  auto phi = Predicate::remainder(sum, 5, 2);
  EXPECT_TRUE(phi->evaluate(in({2})));
  EXPECT_TRUE(phi->evaluate(in({7})));
  EXPECT_TRUE(phi->evaluate(in({12})));
  EXPECT_FALSE(phi->evaluate(in({5})));
  EXPECT_FALSE(phi->evaluate(in({0})));
}

TEST(Predicate, RemainderWithNegativeCoefficient) {
  // x - y ≡ 0 (mod 3).
  LinearSum sum;
  sum.terms.push_back({.variable = 0, .coefficient = 1});
  sum.terms.push_back({.variable = 1, .coefficient = -1});
  auto phi = Predicate::remainder(sum, 3, 0);
  EXPECT_TRUE(phi->evaluate(in({5, 2})));
  EXPECT_TRUE(phi->evaluate(in({2, 5})));  // -3 ≡ 0
  EXPECT_FALSE(phi->evaluate(in({4, 2})));
}

TEST(Predicate, RemainderModulusZeroThrows) {
  LinearSum sum;
  sum.terms.push_back({.variable = 0, .coefficient = 1});
  EXPECT_THROW(Predicate::remainder(sum, 0, 0), std::invalid_argument);
}

TEST(Predicate, BooleanCombinations) {
  // The Figure-1 predicate: 4 <= x < 7.
  auto lo = Predicate::unary_threshold(Nat{4});
  auto hi = Predicate::unary_threshold(Nat{7});
  auto window = Predicate::conjunction(lo, Predicate::negation(hi));
  for (std::uint64_t x = 0; x <= 10; ++x)
    EXPECT_EQ(window->evaluate_unary(Nat{x}), x >= 4 && x < 7) << "x=" << x;
  EXPECT_EQ(window->size(), lo->size() + hi->size() + 2);
}

TEST(Predicate, Disjunction) {
  auto phi = Predicate::disjunction(Predicate::unary_threshold(Nat{10}),
                                    Predicate::negation(
                                        Predicate::unary_threshold(Nat{3})));
  EXPECT_TRUE(phi->evaluate_unary(Nat{0}));
  EXPECT_TRUE(phi->evaluate_unary(Nat{2}));
  EXPECT_FALSE(phi->evaluate_unary(Nat{5}));
  EXPECT_TRUE(phi->evaluate_unary(Nat{10}));
}

TEST(Predicate, HugeThresholdEvaluates) {
  auto phi = Predicate::unary_threshold(Nat::pow2(4096));
  EXPECT_FALSE(phi->evaluate_unary(Nat::pow2(4096) - Nat{1}));
  EXPECT_TRUE(phi->evaluate_unary(Nat::pow2(4096)));
}

TEST(Predicate, OutOfRangeVariableThrows) {
  LinearSum sum;
  sum.terms.push_back({.variable = 3, .coefficient = 1});
  auto phi = Predicate::threshold(sum, Nat{1});
  EXPECT_THROW(phi->evaluate(in({1})), std::out_of_range);
}

TEST(LinearSum, ToString) {
  LinearSum sum;
  sum.terms.push_back({.variable = 0, .coefficient = 1});
  sum.terms.push_back({.variable = 1, .coefficient = -2});
  EXPECT_EQ(sum.to_string(), "x0 - 2*x1");
}

}  // namespace
}  // namespace ppde::presburger
