// Tests for the baseline protocols (Table 1 comparators and workloads).
#include <gtest/gtest.h>

#include <cstdint>

#include "baselines/doubling.hpp"
#include "baselines/flock.hpp"
#include "baselines/majority.hpp"
#include "baselines/remainder.hpp"
#include "pp/simulator.hpp"
#include "pp/verifier.hpp"

namespace ppde::baselines {
namespace {

using pp::Config;
using pp::Protocol;
using pp::SimulationOptions;
using pp::VerificationResult;
using pp::Verifier;

// -- flock of birds ----------------------------------------------------------

TEST(FlockOfBirds, StateCountIsKPlusOne) {
  for (std::uint64_t k : {1, 2, 5, 17}) {
    EXPECT_EQ(make_flock_of_birds(k).num_states(), k + 1);
  }
}

TEST(FlockOfBirds, RejectsKZero) {
  EXPECT_THROW(make_flock_of_birds(0), std::invalid_argument);
}

class FlockExact
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t>> {
};

TEST_P(FlockExact, DecidesThresholdExactly) {
  const auto [k, x] = GetParam();
  if (x < 2) GTEST_SKIP() << "population protocols need two agents";
  Protocol protocol = make_flock_of_birds(k);
  const VerificationResult result =
      Verifier(protocol).verify(flock_initial(protocol, x));
  ASSERT_TRUE(result.stabilises()) << "k=" << k << " x=" << x;
  EXPECT_EQ(result.output(), x >= k) << "k=" << k << " x=" << x;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FlockExact,
    ::testing::Combine(::testing::Values<std::uint64_t>(2, 3, 5, 8),
                       ::testing::Values<std::uint32_t>(2, 3, 4, 5, 7, 8, 9)));

TEST(FlockOfBirds, SimulationAtThresholdBoundary) {
  const std::uint64_t k = 20;
  Protocol protocol = make_flock_of_birds(k);
  SimulationOptions options;
  options.stable_window = 200'000;
  for (std::uint32_t x : {19u, 20u, 21u}) {
    pp::Simulator sim(protocol, flock_initial(protocol, x), 99 + x);
    const auto result = sim.run_until_stable(options);
    ASSERT_TRUE(result.stabilised) << "x=" << x;
    EXPECT_EQ(result.output, x >= k) << "x=" << x;
  }
}

TEST(FlockOfBirds, IsOneAware) {
  // 1-awareness (paper Section 2): a single agent planted in the accepting
  // state converts everyone — the protocol accepts even though x < k.
  Protocol protocol = make_flock_of_birds(5);
  Config poisoned = flock_initial(protocol, 2);  // 2 < 5: should reject ...
  poisoned.add(protocol.state("5"), 1);          // ... but one noise agent
  const VerificationResult result = Verifier(protocol).verify(poisoned);
  EXPECT_EQ(result.verdict, VerificationResult::Verdict::kStabilisesTrue)
      << "flock-of-birds must be fooled by a single accepting noise agent";
}

// -- doubling ----------------------------------------------------------------

TEST(Doubling, StateCountIsLogarithmic) {
  for (std::uint32_t j : {0, 1, 4, 10, 20}) {
    EXPECT_EQ(make_doubling(j).num_states(), j + 2u);
  }
}

class DoublingExact
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(DoublingExact, DecidesPowerOfTwoThreshold) {
  const auto [j, x] = GetParam();
  if (x < 2) GTEST_SKIP();
  Protocol protocol = make_doubling(j);
  const VerificationResult result =
      Verifier(protocol).verify(doubling_initial(protocol, x));
  ASSERT_TRUE(result.stabilises()) << "j=" << j << " x=" << x;
  EXPECT_EQ(result.output(), x >= (1u << j)) << "j=" << j << " x=" << x;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DoublingExact,
    ::testing::Combine(::testing::Values<std::uint32_t>(1, 2, 3),
                       ::testing::Values<std::uint32_t>(2, 3, 4, 5, 6, 7, 8,
                                                        9, 10)));

TEST(Doubling, SimulationAt64) {
  // Reaching the top power requires the two last p5 agents to meet — a
  // Theta(m^2) rare event — so the consensus window must dominate it.
  Protocol protocol = make_doubling(6);  // threshold 64
  SimulationOptions options;
  options.stable_window = 5'000'000;
  options.max_interactions = 100'000'000;
  for (std::uint32_t x : {63u, 64u, 65u}) {
    pp::Simulator sim(protocol, doubling_initial(protocol, x), x);
    const auto result = sim.run_until_stable(options);
    ASSERT_TRUE(result.stabilised) << "x=" << x;
    EXPECT_EQ(result.output, x >= 64) << "x=" << x;
  }
}

TEST(Doubling, IsOneAware) {
  Protocol protocol = make_doubling(3);  // threshold 8
  Config poisoned = doubling_initial(protocol, 3);
  poisoned.add(protocol.state("p3"), 1);  // noise agent at the top power
  const VerificationResult result = Verifier(protocol).verify(poisoned);
  EXPECT_EQ(result.verdict, VerificationResult::Verdict::kStabilisesTrue);
}

// -- majority ----------------------------------------------------------------

TEST(Majority, FourStates) { EXPECT_EQ(make_majority().num_states(), 4u); }

class MajorityExact
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(MajorityExact, DecidesStrictMajority) {
  const auto [x, y] = GetParam();
  if (x + y < 2) GTEST_SKIP();
  Protocol protocol = make_majority();
  const VerificationResult result =
      Verifier(protocol).verify(majority_initial(protocol, x, y));
  ASSERT_TRUE(result.stabilises()) << "x=" << x << " y=" << y;
  EXPECT_EQ(result.output(), x > y) << "x=" << x << " y=" << y;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MajorityExact,
    ::testing::Combine(::testing::Range<std::uint32_t>(0, 6),
                       ::testing::Range<std::uint32_t>(0, 6)));

// -- remainder ---------------------------------------------------------------

TEST(Remainder, StateCountIsDPlusTwo) {
  for (std::uint32_t d : {1, 2, 3, 7}) {
    EXPECT_EQ(make_remainder(d, 0).num_states(), d + 2u);
  }
}

TEST(Remainder, RejectsBadParameters) {
  EXPECT_THROW(make_remainder(0, 0), std::invalid_argument);
  EXPECT_THROW(make_remainder(3, 3), std::invalid_argument);
}

class RemainderExact
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> {};

TEST_P(RemainderExact, DecidesCongruence) {
  const auto [d, r, x] = GetParam();
  if (r >= d || x < 2) GTEST_SKIP();
  Protocol protocol = make_remainder(d, r);
  const VerificationResult result =
      Verifier(protocol).verify(remainder_initial(protocol, x));
  ASSERT_TRUE(result.stabilises()) << "d=" << d << " r=" << r << " x=" << x;
  EXPECT_EQ(result.output(), x % d == r)
      << "d=" << d << " r=" << r << " x=" << x;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RemainderExact,
    ::testing::Combine(::testing::Values<std::uint32_t>(2, 3, 4),
                       ::testing::Values<std::uint32_t>(0, 1, 2),
                       ::testing::Values<std::uint32_t>(2, 3, 4, 5, 6, 7)));

}  // namespace
}  // namespace ppde::baselines
