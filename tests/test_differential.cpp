// Differential fuzzing of the pipeline's semantics.
//
// For seeded random population programs, the three implementations of the
// same semantics must agree *exactly* on every small input:
//
//   program level   progmodel::decide            (flattened interpreter)
//   machine level   machine::decide_machine      (Definition 13, lowered)
//   protocol level  pp::Verifier on the converted protocol from pi(C)
//                   (witness semantics, Appendix B.3 gadgets)
//
// All three compute "every fair run stabilises to b" by bottom-SCC
// analysis of *different* transition systems, so agreement across random
// control flow (nested ifs/whiles, swaps, moves, detects, OF writes,
// procedure calls, restarts) is strong evidence the lowerings are
// semantics-preserving — Proposition 14 and Proposition 16 checked in
// bulk, beyond the handwritten cases.
#include <gtest/gtest.h>

#include <cstdint>

#include "compile/lower.hpp"
#include "compile/to_protocol.hpp"
#include "machine/interp.hpp"
#include "pp/verifier.hpp"
#include "progmodel/builder.hpp"
#include "progmodel/explore.hpp"
#include "progmodel/flat.hpp"
#include "progmodel/interp.hpp"
#include "support/rng.hpp"

namespace ppde {
namespace {

using progmodel::BlockBuilder;
using progmodel::CondExpr;
using progmodel::DecisionResult;
using progmodel::ProcRef;
using progmodel::Program;
using progmodel::ProgramBuilder;
using progmodel::Reg;

/// Generates a random structured program over 2 registers with a helper
/// procedure, bounded nesting, and (optionally) restart statements.
class RandomProgram {
 public:
  explicit RandomProgram(std::uint64_t seed) : rng_(seed) {}

  Program generate() {
    ProgramBuilder b;
    regs_ = {b.reg("a"), b.reg("b")};
    const ProcRef helper = b.proc("Helper", /*returns_value=*/true,
                                  [this](BlockBuilder& s) {
                                    emit_block(s, /*depth=*/1, nullptr);
                                    s.return_(rng_.coin());
                                  });
    const ProcRef main =
        b.proc("Main", /*returns_value=*/false, [&](BlockBuilder& s) {
          s.set_of(rng_.coin());
          emit_block(s, /*depth=*/0, &helper);
          // End in an observable steady state: loop forever, optionally
          // flipping OF behind a detect (so some programs never stabilise).
          s.while_(s.constant(true), [&](BlockBuilder& t) {
            if (rng_.chance(1, 2)) {
              t.if_(t.detect(pick_reg()), [&](BlockBuilder& u) {
                u.set_of(rng_.coin());
              });
            }
          });
        });
    return std::move(b).build(main);
  }

 private:
  Reg pick_reg() { return regs_[rng_.below(regs_.size())]; }

  CondExpr random_cond(BlockBuilder& s, const ProcRef* helper) {
    switch (rng_.below(helper != nullptr ? 4 : 3)) {
      case 0:
        return s.detect(pick_reg());
      case 1:
        return s.not_(s.detect(pick_reg()));
      case 2:
        return s.and_(s.detect(pick_reg()), s.detect(pick_reg()));
      default:
        return s.call_cond(*helper);
    }
  }

  void emit_block(BlockBuilder& s, int depth, const ProcRef* helper) {
    const std::uint64_t statements = 1 + rng_.below(3);
    for (std::uint64_t i = 0; i < statements; ++i) {
      switch (rng_.below(depth >= 2 ? 4 : 6)) {
        case 0: {
          // Guarded move (unguarded moves hang on empty registers, which
          // is legal but makes most programs trivially divergent).
          const Reg from = pick_reg();
          const Reg to = from == regs_[0] ? regs_[1] : regs_[0];
          s.if_(s.detect(from),
                [&](BlockBuilder& t) { t.move(from, to); });
          break;
        }
        case 1:
          s.swap(regs_[0], regs_[1]);
          break;
        case 2:
          s.set_of(rng_.coin());
          break;
        case 3:
          if (rng_.chance(1, 4)) {
            s.restart();
            break;
          }
          s.set_of(rng_.coin());
          break;
        case 4:
          s.if_(random_cond(s, helper),
                [&](BlockBuilder& t) { emit_block(t, depth + 1, helper); },
                [&](BlockBuilder& t) { emit_block(t, depth + 1, helper); });
          break;
        default:
          // While loops draining a register terminate under fairness.
          {
            const Reg reg = pick_reg();
            const Reg other = reg == regs_[0] ? regs_[1] : regs_[0];
            s.while_(s.detect(reg),
                     [&](BlockBuilder& t) { t.move(reg, other); });
          }
          break;
      }
    }
  }

  support::Rng rng_;
  std::vector<Reg> regs_;
};

int verdict_of(DecisionResult::Verdict v) {
  switch (v) {
    case DecisionResult::Verdict::kStabilisesTrue:
      return 1;
    case DecisionResult::Verdict::kStabilisesFalse:
      return 0;
    case DecisionResult::Verdict::kDoesNotStabilise:
      return 2;
    default:
      return 3;
  }
}

int verdict_of(machine::MachineDecision::Verdict v) {
  switch (v) {
    case machine::MachineDecision::Verdict::kStabilisesTrue:
      return 1;
    case machine::MachineDecision::Verdict::kStabilisesFalse:
      return 0;
    case machine::MachineDecision::Verdict::kDoesNotStabilise:
      return 2;
    default:
      return 3;
  }
}

int verdict_of(pp::VerificationResult::Verdict v) {
  switch (v) {
    case pp::VerificationResult::Verdict::kStabilisesTrue:
      return 1;
    case pp::VerificationResult::Verdict::kStabilisesFalse:
      return 0;
    case pp::VerificationResult::Verdict::kDoesNotStabilise:
      return 2;
    default:
      return 3;
  }
}

class Differential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Differential, ProgramMachineProtocolAgree) {
  const Program program = RandomProgram(GetParam()).generate();
  SCOPED_TRACE(program.to_string());

  const progmodel::FlatProgram flat = progmodel::FlatProgram::compile(program);
  const compile::LoweredMachine lowered = compile::lower_program(program);
  compile::ConversionOptions nb;
  nb.with_broadcast = false;
  const compile::ProtocolConversion conv =
      compile::machine_to_protocol(lowered.machine, nb);

  pp::VerifierOptions protocol_options;
  protocol_options.witness_mode = true;
  protocol_options.max_configs = 1'500'000;

  for (std::uint64_t m = 0; m <= 3; ++m) {
    for (const auto& split : progmodel::all_compositions(m, 2)) {
      const DecisionResult prog = progmodel::decide(flat, split);
      const machine::MachineDecision mach =
          machine::decide_machine(lowered.machine, split);
      ASSERT_NE(verdict_of(prog.verdict), 3) << "m=" << m;
      ASSERT_NE(verdict_of(mach.verdict), 3) << "m=" << m;
      EXPECT_EQ(verdict_of(prog.verdict), verdict_of(mach.verdict))
          << "program vs machine, m=" << m << " split=(" << split[0] << ","
          << split[1] << ")";

      const pp::VerificationResult proto =
          pp::Verifier(conv.protocol)
              .verify(conv.pi(machine::initial_state(lowered.machine, split),
                              false),
                      protocol_options);
      if (verdict_of(proto.verdict) == 3) continue;  // resource limit: skip
      EXPECT_EQ(verdict_of(mach.verdict), verdict_of(proto.verdict))
          << "machine vs protocol, m=" << m << " split=(" << split[0] << ","
          << split[1] << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         ::testing::Range<std::uint64_t>(1, 101));

TEST(DifferentialRunner, RandomisedRunsAgreeWithExactVerdicts) {
  // When the exact analysis says "stabilises to b", a sufficiently long
  // randomized run must land on b as well (probability-1 statement;
  // deterministic seeds keep it reproducible).
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    const Program program = RandomProgram(seed).generate();
    const progmodel::FlatProgram flat =
        progmodel::FlatProgram::compile(program);
    for (std::uint64_t m = 1; m <= 3; ++m) {
      const DecisionResult exact = progmodel::decide(flat, {m, 0});
      if (!exact.stabilises()) continue;
      progmodel::Runner runner(flat, {m, 0}, seed * 31 + m);
      progmodel::RunOptions options;
      options.stable_window = 300'000;
      options.max_steps = 30'000'000;
      const progmodel::RunResult run = runner.run(options);
      ASSERT_TRUE(run.stabilised) << "seed=" << seed << " m=" << m;
      EXPECT_EQ(run.output, exact.output())
          << "seed=" << seed << " m=" << m << "\n"
          << program.to_string();
    }
  }
}

}  // namespace
}  // namespace ppde
