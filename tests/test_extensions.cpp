// Tests for the library extensions beyond the paper's core pipeline:
// scheduler ablation knobs (restart policies, detect bias), mid-run agent
// removal, and the Graphviz export.
#include <gtest/gtest.h>

#include <numeric>

#include "analysis/crn.hpp"
#include "analysis/reachability.hpp"
#include "baselines/majority.hpp"
#include "compile/lower.hpp"
#include "compile/to_protocol.hpp"
#include "czerner/construction.hpp"
#include "pp/simulator.hpp"
#include "pp/verifier.hpp"
#include "progmodel/builder.hpp"
#include "progmodel/explore.hpp"
#include "progmodel/flat.hpp"
#include "progmodel/interp.hpp"
#include "progmodel/sample_programs.hpp"

namespace ppde {
namespace {

using progmodel::FlatProgram;
using progmodel::RestartPolicy;
using progmodel::RunOptions;
using progmodel::Runner;

// -- restart policies -----------------------------------------------------------

TEST(RestartPolicies, StarsAndBarsConservesTotal) {
  const FlatProgram flat =
      FlatProgram::compile(progmodel::make_figure1_program());
  Runner runner(flat, {1, 2, 4}, 11);
  runner.set_policies(RestartPolicy::kStarsAndBars, 1, 2);
  for (int i = 0; i < 100'000; ++i) runner.step();
  const auto& regs = runner.registers();
  EXPECT_EQ(std::accumulate(regs.begin(), regs.end(), std::uint64_t{0}), 7u);
  EXPECT_GT(runner.restarts(), 0u);
}

TEST(RestartPolicies, StarsAndBarsCoversExtremes) {
  // A uniform-composition sampler must occasionally put everything into a
  // single register; with 3 registers and m = 4 each extreme composition
  // has probability 1/C(6,2) = 1/15 per restart.
  const FlatProgram flat =
      FlatProgram::compile(progmodel::make_figure1_program());
  Runner runner(flat, {0, 0, 4}, 23);
  runner.set_policies(RestartPolicy::kStarsAndBars, 1, 2);
  bool saw_all_in_x = false;
  for (int i = 0; i < 500'000 && !saw_all_in_x; ++i) {
    runner.step();
    saw_all_in_x = runner.registers()[0] == 4;
  }
  EXPECT_TRUE(saw_all_in_x);
}

class PolicyCorrectness
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(PolicyCorrectness, Figure1DecidedUnderEveryFairPolicy) {
  // Both fair policies (and any detect bias) decide the window predicate.
  const auto [policy_index, m] = GetParam();
  const FlatProgram flat =
      FlatProgram::compile(progmodel::make_figure1_program());
  Runner runner(flat, {0, 0, m}, 37 + m);
  RunOptions options;
  options.stable_window = 300'000;
  options.max_steps = 60'000'000;
  options.restart_policy = static_cast<RestartPolicy>(policy_index);
  options.detect_true_num = policy_index == 0 ? 1 : 3;
  options.detect_true_den = 4;
  const auto result = runner.run(options);
  ASSERT_TRUE(result.stabilised);
  EXPECT_EQ(result.output, m >= 4 && m < 7) << "m=" << m;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PolicyCorrectness,
    // m = 2 (reject below) and m = 5 (accept) are observable under any
    // detect bias; the upper-threshold reject (m >= 7) needs seven
    // consecutive detect successes and is covered exhaustively in
    // test_progmodel.cpp instead.
    ::testing::Combine(::testing::Values(0, 1),  // multinomial, stars&bars
                       ::testing::Values<std::uint64_t>(2, 5)));

TEST(RestartPolicies, AllInHubBreaksAcceptance) {
  // The deliberately broken policy never reaches an n-proper configuration
  // of the construction, so the accept case m = k never turns true.
  const auto c = czerner::build_construction(1);
  const FlatProgram flat = FlatProgram::compile(c.program);
  std::vector<std::uint64_t> regs(5, 0);
  regs[4] = 2;  // m = k = 2: must accept under fair restarts...
  Runner runner(flat, regs, 3);
  RunOptions options;
  options.stable_window = 500'000;
  options.max_steps = 30'000'000;
  options.restart_policy = RestartPolicy::kAllInHub;
  const auto result = runner.run(options);
  // ... but never does here: the window reports the perpetual false.
  ASSERT_TRUE(result.stabilised);
  EXPECT_FALSE(result.output)
      << "all-in-hub restarts must not be able to accept";
}

// -- agent removal -----------------------------------------------------------------

TEST(AgentRemoval, ConservesAndFilters) {
  const pp::Protocol protocol = baselines::make_majority();
  pp::Simulator sim(protocol, baselines::majority_initial(protocol, 5, 4), 9);
  const pp::State big_a = protocol.state("A");
  const auto removed =
      sim.remove_random_agent([big_a](pp::State q) { return q == big_a; });
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(*removed, big_a);
  EXPECT_EQ(sim.population(), 8u);
  EXPECT_EQ(sim.config()[big_a], 4u);
}

TEST(AgentRemoval, AcceptingCountStaysConsistent) {
  const pp::Protocol protocol = baselines::make_majority();
  pp::Simulator sim(protocol, baselines::majority_initial(protocol, 6, 2), 5);
  for (int i = 0; i < 2000; ++i) sim.step();
  for (int i = 0; i < 4; ++i) sim.remove_random_agent();
  EXPECT_EQ(sim.accepting_agents(), sim.config().accepting_count(protocol));
}

TEST(AgentRemoval, RefusesBelowTwoAgents) {
  const pp::Protocol protocol = baselines::make_majority();
  pp::Simulator sim(protocol, baselines::majority_initial(protocol, 1, 1), 2);
  EXPECT_FALSE(sim.remove_random_agent().has_value());
}

TEST(AgentRemoval, NoEligibleAgent) {
  const pp::Protocol protocol = baselines::make_majority();
  pp::Simulator sim(protocol, baselines::majority_initial(protocol, 3, 2), 2);
  const pp::State small_a = protocol.state("a");
  EXPECT_FALSE(sim.remove_random_agent([small_a](pp::State q) {
                    return q == small_a;  // nobody is in "a" initially
                  }).has_value());
}

TEST(AgentRemoval, MajorityFlipsWhenLeaderRemoved) {
  // Removing enough A agents flips a 5-vs-4 majority: the protocol
  // re-converges to the new truth (majority is naturally removal-tolerant,
  // unlike the pipeline's pointer agents — see bench_agent_removal).
  const pp::Protocol protocol = baselines::make_majority();
  pp::Simulator sim(protocol, baselines::majority_initial(protocol, 5, 4), 1);
  const pp::State big_a = protocol.state("A");
  for (int i = 0; i < 2; ++i)
    ASSERT_TRUE(sim.remove_random_agent(
                        [big_a](pp::State q) { return q == big_a; })
                    .has_value());
  pp::SimulationOptions options;
  options.stable_window = 100'000;
  const auto result = sim.run_until_stable(options);
  ASSERT_TRUE(result.stabilised);
  EXPECT_FALSE(result.output) << "3 A vs 4 B: majority must reject";
}

// -- dot export ------------------------------------------------------------------

TEST(DotExport, RendersNodesAndEdges) {
  const pp::Protocol protocol = baselines::make_majority();
  const std::string dot = protocol.to_dot();
  EXPECT_NE(dot.find("digraph protocol"), std::string::npos);
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);  // accepting
  EXPECT_NE(dot.find("style=bold"), std::string::npos);     // input
  EXPECT_NE(dot.find("label=\"A\""), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(DotExport, ElidesBeyondLimit) {
  const auto lowered =
      compile::lower_program(progmodel::make_figure1_program());
  const auto conv = compile::machine_to_protocol(lowered.machine);
  const std::string dot = conv.protocol.to_dot(/*max_transitions=*/10);
  EXPECT_NE(dot.find("more transitions elided"), std::string::npos);
}


// -- state reachability --------------------------------------------------------------

TEST(Reachability, EpidemicFromMixedStart) {
  pp::Protocol protocol;
  const pp::State sick = protocol.add_state("sick");
  const pp::State healthy = protocol.add_state("healthy");
  const pp::State unused = protocol.add_state("unused");
  protocol.add_transition(sick, healthy, sick, sick);
  protocol.finalize();
  pp::Config initial(3);
  initial.add(sick, 1);
  initial.add(healthy, 3);
  const auto occupiable = analysis::reachable_states(protocol, initial);
  EXPECT_TRUE(occupiable[sick]);
  EXPECT_TRUE(occupiable[healthy]);
  EXPECT_FALSE(occupiable[unused]);
  EXPECT_EQ(analysis::reachable_state_count(protocol, initial), 2u);
}

TEST(Reachability, ConversionHasUnoccupiableStates) {
  // The nominal Theorem-5 state count includes gadget stages no run can
  // occupy; the effective count from the initial configuration is smaller.
  const auto lowered =
      compile::lower_program(czerner::build_construction(1).program);
  const auto conv = compile::machine_to_protocol(lowered.machine);
  const std::uint64_t effective = analysis::reachable_state_count(
      conv.protocol, conv.initial_config(conv.num_pointers + 3));
  EXPECT_LT(effective, conv.protocol.num_states());
  EXPECT_GT(effective, conv.protocol.num_states() / 4);
}

// -- hang detection -------------------------------------------------------------------

TEST(HangDetection, UnguardedMoveHangs) {
  // move on an empty register blocks the program forever; the explorer
  // reports it as a divergence (non-terminal bottom SCC) with the hang
  // flag, and the randomized runner surfaces it too.
  progmodel::ProgramBuilder b;
  const progmodel::Reg a = b.reg("a");
  const progmodel::Reg c = b.reg("b");
  const progmodel::ProcRef main =
      b.proc("Main", false, [&](progmodel::BlockBuilder& s) {
        s.set_of(true);
        s.move(a, c);  // hangs whenever a == 0
        s.set_of(false);
        s.while_(s.constant(true), [](progmodel::BlockBuilder&) {});
      });
  const progmodel::Program program = std::move(b).build(main);
  const FlatProgram flat = FlatProgram::compile(program);

  const auto analysis = progmodel::analyse_main(flat, {0, 1});
  EXPECT_TRUE(analysis.may_stabilise_true)
      << "hung with OF = true: stabilises to true in the fair-run sense";
  EXPECT_FALSE(analysis.may_stabilise_false);

  Runner runner(flat, {0, 1}, 4);
  RunOptions options;
  options.max_steps = 1'000'000;
  const auto result = runner.run(options);
  EXPECT_TRUE(result.hung);
  EXPECT_TRUE(result.output);

  // With a unit available the move succeeds and OF ends false.
  const auto ok = progmodel::analyse_main(flat, {1, 0});
  EXPECT_TRUE(ok.may_stabilise_false);
  EXPECT_FALSE(ok.may_stabilise_true);
}


// -- pruning -------------------------------------------------------------------------

TEST(Pruning, PrunedPipelineDecidesTheSamePredicate) {
  // Dropping unoccupiable states must not change the decided predicate:
  // exact verdicts on the pruned protocol match the original's.
  const auto lowered =
      compile::lower_program(czerner::build_construction(1).program);
  compile::ConversionOptions nb;
  nb.with_broadcast = false;
  const auto conv = compile::machine_to_protocol(lowered.machine, nb);

  for (std::uint64_t m_regs = 0; m_regs <= 2; ++m_regs) {
    std::vector<std::uint64_t> regs(5, 0);
    regs[4] = m_regs;
    const pp::Config initial =
        conv.pi(machine::initial_state(lowered.machine, regs), false);
    const auto pruned = analysis::prune_protocol(conv.protocol, initial);
    EXPECT_LT(pruned.protocol.num_states(), conv.protocol.num_states());
    EXPECT_EQ(pruned.initial.total(), initial.total());

    pp::VerifierOptions options;
    options.witness_mode = true;
    const auto original =
        pp::Verifier(conv.protocol).verify(initial, options);
    const auto reduced =
        pp::Verifier(pruned.protocol).verify(pruned.initial, options);
    ASSERT_TRUE(original.stabilises());
    ASSERT_TRUE(reduced.stabilises());
    EXPECT_EQ(original.output(), reduced.output()) << "m_regs=" << m_regs;
    EXPECT_EQ(reduced.output(), m_regs >= 2);
  }
}

TEST(Pruning, KeepsAcceptingAndInputMarks) {
  const pp::Protocol protocol = baselines::make_majority();
  const pp::Config initial = baselines::majority_initial(protocol, 2, 1);
  const auto pruned = analysis::prune_protocol(protocol, initial);
  // Majority from (2,1) can occupy all four states.
  EXPECT_EQ(pruned.protocol.num_states(), 4u);
  EXPECT_EQ(pruned.protocol.input_states().size(),
            protocol.input_states().size());
}

// -- CRN export ----------------------------------------------------------------------

TEST(CrnExport, MajorityReactions) {
  const pp::Protocol protocol = baselines::make_majority();
  const std::string crn = analysis::to_crn(protocol);
  EXPECT_NE(crn.find("species A  # accepting"), std::string::npos);
  EXPECT_NE(crn.find("A + B -> a + b"), std::string::npos);
  EXPECT_NE(crn.find("a + b -> b + b"), std::string::npos);
  const auto stats = analysis::crn_stats(protocol);
  EXPECT_EQ(stats.species, 4u);
  EXPECT_EQ(stats.reactions, 4u);
}

TEST(CrnExport, MergesSymmetricDuplicates) {
  // Two orientations of the same chemical reaction count once.
  pp::Protocol protocol;
  const pp::State a = protocol.add_state("A");
  const pp::State b = protocol.add_state("B");
  const pp::State c = protocol.add_state("C");
  protocol.add_transition(a, b, c, c);
  protocol.add_transition(b, a, c, c);
  protocol.finalize();
  EXPECT_EQ(analysis::crn_stats(protocol).reactions, 1u);
}

TEST(CrnExport, MarksUnreachableSpecies) {
  const auto lowered =
      compile::lower_program(czerner::build_construction(1).program);
  const auto conv = compile::machine_to_protocol(lowered.machine);
  const std::string crn = analysis::to_crn(
      conv.protocol, conv.initial_config(conv.num_pointers + 2),
      /*max_reactions=*/5);
  EXPECT_NE(crn.find("(unreachable)"), std::string::npos);
  EXPECT_NE(crn.find("more reactions elided"), std::string::npos);
}

}  // namespace
}  // namespace ppde
