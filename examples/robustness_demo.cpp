// Robustness demo (paper Section 8): 1-aware protocols are fooled by a
// single noise agent; the paper's construction is almost self-stabilising.
//
// Side 1: flock-of-birds with threshold 5 on input x = 2 — should reject,
//         but one planted agent in the accepting state converts everyone.
// Side 2: the n=1 pipeline protocol with a noise agent planted in an
//         accepting state (OF = true) — the protocol re-elects, recounts,
//         and still answers by the total agent count alone. Verified
//         exactly (every fair run), not just sampled.
#include <cstdio>

#include "baselines/flock.hpp"
#include "compile/lower.hpp"
#include "compile/to_protocol.hpp"
#include "czerner/construction.hpp"
#include "machine/interp.hpp"
#include "pp/verifier.hpp"

int main() {
  using namespace ppde;

  std::printf("--- 1-aware baseline: flock of birds, k = 5, x = 2 ---\n");
  {
    pp::Protocol flock = baselines::make_flock_of_birds(5);
    pp::Config honest = baselines::flock_initial(flock, 2);
    pp::Config poisoned = honest;
    poisoned.add(flock.state("5"), 1);  // one agent planted at the top

    const auto v1 = pp::Verifier(flock).verify(honest);
    const auto v2 = pp::Verifier(flock).verify(poisoned);
    std::printf("  honest (x=2):          %s\n", to_string(v1.verdict).c_str());
    std::printf("  + 1 accepting agent:   %s   <- fooled: 3 agents"
                " accepted as >= 5\n",
                to_string(v2.verdict).c_str());
  }

  std::printf("\n--- This paper's construction (n = 1, k = 2) ---\n");
  {
    const auto lowered =
        compile::lower_program(czerner::build_construction(1).program);
    compile::ConversionOptions nb;
    nb.with_broadcast = false;
    const auto conv = compile::machine_to_protocol(lowered.machine, nb);
    pp::VerifierOptions options;
    options.witness_mode = true;
    options.max_configs = 6'000'000;

    const auto phi_prime = [&conv](std::uint64_t m) {
      return m >= conv.num_pointers && m - conv.num_pointers >= 2;
    };

    // Elected configuration with 0 register agents + a fake accepting
    // agent: total = |F| + 1, phi' says reject — and it does.
    std::vector<std::uint64_t> regs(5, 0);
    pp::Config poisoned =
        conv.pi(machine::initial_state(lowered.machine, regs), false);
    poisoned.add(conv.pointer_state(lowered.machine.of, 1,
                                    compile::Stage::kNone, false));
    const auto verdict = pp::Verifier(conv.protocol).verify(poisoned, options);
    std::printf("  pi(0 agents) + 1 planted accepting agent (total %llu):\n",
                (unsigned long long)poisoned.total());
    std::printf("    exact verdict: %s   [phi'(%llu) = %s]\n",
                to_string(verdict.verdict).c_str(),
                (unsigned long long)poisoned.total(),
                phi_prime(poisoned.total()) ? "accept" : "reject");
    std::printf("    -> the planted accepting witness is *recounted as an"
                " ordinary agent*;\n       the protocol only accepts"
                " provisionally and keeps checking invariants.\n");
  }
  return 0;
}
