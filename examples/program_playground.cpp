// Population-program playground: the paper's Figure-1 example.
//
// Shows the structured program, its goto-style flattening, the lowered
// population machine, and then decides the predicate 4 <= m < 7 for every
// m — exhaustively (every fair run, every initial distribution) and with
// the randomized interpreter.
//
// Usage: program_playground [max_m]   (default 10)
#include <cstdio>
#include <cstdlib>

#include "compile/lower.hpp"
#include "progmodel/explore.hpp"
#include "progmodel/flat.hpp"
#include "progmodel/interp.hpp"
#include "progmodel/sample_programs.hpp"

int main(int argc, char** argv) {
  using namespace ppde::progmodel;
  const std::uint64_t max_m = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                       : 10;

  const Program program = make_figure1_program();
  std::printf("=== Figure 1: population program for 4 <= x < 7 ===\n\n%s\n",
              program.to_string().c_str());

  const auto size = program.size();
  std::printf("size = |Q| + L + S = %llu + %llu + %llu = %llu\n\n",
              (unsigned long long)size.num_registers,
              (unsigned long long)size.num_instructions,
              (unsigned long long)size.swap_size,
              (unsigned long long)size.total());

  const FlatProgram flat = FlatProgram::compile(program);
  std::printf("=== Flattened (interpreter form, %zu ops) ===\n\n%s\n",
              flat.ops.size(), flat.to_string().c_str());

  const auto lowered = ppde::compile::lower_program(program);
  std::printf("=== Population machine (Section 7.2, %zu instructions) ===\n",
              lowered.machine.num_instructions());
  std::printf("%s\n", lowered.machine.to_string().c_str());

  std::printf("=== Decisions ===\n");
  std::printf("%-4s  %-28s  %-22s\n", "m", "exhaustive (all fair runs)",
              "randomized run");
  for (std::uint64_t m = 0; m <= max_m; ++m) {
    const DecisionResult exact = decide(flat, {0, 0, m});
    Runner runner(flat, {0, 0, m}, 7 + m);
    RunOptions options;
    options.stable_window = 200'000;
    options.max_steps = 50'000'000;
    const RunResult random = runner.run(options);
    std::printf("%-4llu  %-28s  %s (restarts: %llu)\n",
                (unsigned long long)m,
                exact.verdict == DecisionResult::Verdict::kStabilisesTrue
                    ? "ACCEPT"
                    : exact.verdict == DecisionResult::Verdict::kStabilisesFalse
                          ? "reject"
                          : "?!",
                random.stabilised ? (random.output ? "ACCEPT" : "reject")
                                  : "budget exceeded",
                (unsigned long long)random.restarts);
  }
  return 0;
}
