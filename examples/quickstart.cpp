// Quickstart: build the paper's construction end to end and watch it run.
//
//   population program (Section 6)
//     -> population machine (Section 7.2)
//       -> population protocol (Section 7.3)
//         -> random-scheduler simulation to stable consensus.
//
// Usage: quickstart [n]     (default n = 1; n = 1 simulates in ~a second,
//                            n >= 2 only prints sizes — convergence of the
//                            full protocol is astronomical by design)
#include <cstdio>
#include <cstdlib>

#include "compile/lower.hpp"
#include "compile/to_protocol.hpp"
#include "czerner/construction.hpp"
#include "pp/simulator.hpp"

int main(int argc, char** argv) {
  using namespace ppde;
  const int n = argc > 1 ? std::atoi(argv[1]) : 1;
  if (n < 1) {
    std::fprintf(stderr, "usage: %s [n >= 1]\n", argv[0]);
    return 1;
  }

  // 1. The succinct population program of Section 6.
  const czerner::Construction construction = czerner::build_construction(n);
  const auto program_size = construction.program.size();
  std::printf("Section 6 population program, n = %d\n", n);
  std::printf("  registers ....... %llu\n",
              (unsigned long long)program_size.num_registers);
  std::printf("  instructions .... %llu\n",
              (unsigned long long)program_size.num_instructions);
  std::printf("  swap-size ....... %llu\n",
              (unsigned long long)program_size.swap_size);
  std::printf("  threshold k ..... %s  (>= 2^(2^(n-1)) = 2^%llu)\n",
              czerner::Construction::threshold(n).to_decimal().c_str(),
              (unsigned long long)(1ull << (n - 1)));

  // 2. Lower to a population machine (Section 7.2).
  const compile::LoweredMachine lowered =
      compile::lower_program(construction.program);
  std::printf("Population machine\n");
  std::printf("  instructions .... %zu\n", lowered.machine.num_instructions());
  std::printf("  pointers |F| .... %zu\n", lowered.machine.num_pointers());
  std::printf("  size ............ %llu\n",
              (unsigned long long)lowered.machine.size());

  // 3. Convert to a population protocol (Section 7.3).
  std::printf("Population protocol\n");
  std::printf("  states .......... %llu  (Theorem 1: O(n) states decide"
              " x >= 2^(2^(n-1)))\n",
              (unsigned long long)compile::conversion_state_count(
                  lowered.machine));

  if (n > 1) {
    std::printf("\n(n > 1: skipping simulation — the detect-restart loop "
                "needs astronomically many\n interactions at protocol level;"
                " see bench_restart_dynamics for the program level.)\n");
    return 0;
  }

  const compile::ProtocolConversion conv =
      compile::machine_to_protocol(lowered.machine);
  std::printf("  transitions ..... %zu\n", conv.protocol.num_transitions());
  std::printf("  input shift |F| . %u   (decides phi'(m) <=> m - |F| >= k)\n",
              conv.num_pointers);

  // 4. Simulate: |F| agents become pointer agents; the rest are counted.
  std::printf("\nSimulating (uniform random scheduler):\n");
  for (std::uint32_t extra : {1u, 2u, 3u}) {
    const std::uint64_t m = conv.num_pointers + extra;
    pp::Simulator sim(conv.protocol, conv.initial_config(m), 42 + extra);
    pp::SimulationOptions options;
    options.stable_window = 90'000'000;
    options.max_interactions = 1'500'000'000;
    const pp::SimulationResult result = sim.run_until_stable(options);
    // NB: "reject" verdicts from simulation are one-sided — a run that has
    // not yet accepted is indistinguishable from a rejecting one; the test
    // suite settles such cases with the exact verifier.
    std::printf("  m = |F| + %u: %s after %.1fM interactions"
                "   [expected: %s]\n",
                extra,
                result.stabilised ? (result.output ? "ACCEPT" : "reject")
                                  : "no consensus",
                static_cast<double>(result.consensus_since) / 1e6,
                extra >= 2 ? "ACCEPT" : "reject");
  }
  return 0;
}
