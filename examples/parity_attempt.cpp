// Why remainder predicates elude population programs (paper Section 9).
//
// The conclusion remarks that the model "seems impossible" to use for even
// the parity predicate (is the number of agents even?). This example makes
// the difficulty concrete with the natural attempt — drain x into y,
// toggling the output flag per moved unit — which fails in two stacked
// ways that the exhaustive explorer exposes precisely:
//
//   1. detect may fail spuriously, so the drain loop can exit *early* with
//      agents left in x: from (x, y) = (m, 0) different fair runs freeze
//      OF at different parities — "does not stabilise". Threshold programs
//      recover from exactly this with a retry loop (while !Test: Clean),
//      because a threshold check is *monotone*: retrying can only help.
//      A parity toggle is not monotone — every extra pass flips the
//      answer, so retries make it worse, not better.
//   2. even a magically exact drain would compute x's parity, not the
//      population's: y's initial content is invisible, and certifying
//      "y started empty" needs absence detection, which the model lacks.
//      Thresholds escape through Lipton's complement trick (x = 0 iff
//      ~x >= N); parity has no bounded complement to certify against.
#include <cstdio>
#include <string>

#include "progmodel/builder.hpp"
#include "progmodel/explore.hpp"
#include "progmodel/flat.hpp"

int main() {
  using namespace ppde::progmodel;

  ProgramBuilder b;
  const Reg x = b.reg("x");
  const Reg y = b.reg("y");
  const ProcRef main = b.proc("Main", false, [&](BlockBuilder& s) {
    s.set_of(false);
    // Drain x pairwise, tracking parity in OF (OF := !OF is not a
    // primitive, so the toggle is unrolled over two moves).
    s.while_(s.detect(x), [&](BlockBuilder& t) {
      t.move(x, y);
      t.set_of(true);
      t.if_(t.detect(x), [&](BlockBuilder& u) {
        u.move(x, y);
        u.set_of(false);
      });
    });
    s.while_(s.constant(true), [](BlockBuilder&) {});
  });
  const Program program = std::move(b).build(main);
  std::printf("the attempt:\n%s\n", program.to_string().c_str());

  const FlatProgram flat = FlatProgram::compile(program);
  std::printf("exhaustive verdicts per initial distribution "
              "(predicate: m odd):\n");
  std::printf("%-4s %-8s %-20s %-8s\n", "m", "(x, y)", "verdict", "m odd?");
  for (std::uint64_t m = 0; m <= 5; ++m) {
    for (std::uint64_t in_x = 0; in_x <= m; ++in_x) {
      const DecisionResult result = decide(flat, {in_x, m - in_x});
      const std::string verdict =
          result.verdict == DecisionResult::Verdict::kStabilisesTrue
              ? "true"
              : result.verdict == DecisionResult::Verdict::kStabilisesFalse
                    ? "false"
                    : "does not stabilise";
      const std::string truth = m % 2 ? "true" : "false";
      std::printf("%-4llu (%llu, %llu)   %-20s %-8s%s\n",
                  (unsigned long long)m, (unsigned long long)in_x,
                  (unsigned long long)(m - in_x), verdict.c_str(),
                  truth.c_str(), verdict != truth ? "   <- WRONG" : "");
    }
  }
  std::printf(
      "\nAlmost every distribution fails: spurious detect-false exits\n"
      "freeze OF at arbitrary parities (does not stabilise), and the rows\n"
      "that do stabilise report x's parity contribution, not m's. Retry\n"
      "loops cannot repair a non-monotone check, and absence detection\n"
      "(was y empty?) does not exist in the model — the paper's\n"
      "Section-9 point, observed exactly.\n");
  return 0;
}
