// Threshold explorer: how far does O(n) states reach?
//
// For each level count n this prints the exact double-exponential threshold
// k(n) the construction decides, the sizes at each pipeline stage, and the
// state-per-log|phi| ratio of Theorem 1. The thresholds quickly dwarf
// anything representable in machine words — k(10) already has ~154 decimal
// digits — which is why the library carries its own bignum substrate.
//
// Usage: threshold_explorer [max_n]   (default 12)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "analysis/tables.hpp"
#include "bignum/nat.hpp"
#include "compile/lower.hpp"
#include "compile/to_protocol.hpp"
#include "czerner/construction.hpp"
#include "presburger/predicate.hpp"

int main(int argc, char** argv) {
  using namespace ppde;
  const int max_n = argc > 1 ? std::atoi(argv[1]) : 12;

  analysis::TextTable table({"n", "k(n)", "|phi| (bits)", "program",
                             "machine", "protocol states",
                             "states/log2|phi|"});
  for (int n = 1; n <= max_n; ++n) {
    const czerner::Construction c = czerner::build_construction(n);
    const bignum::Nat k = czerner::Construction::threshold(n);
    const auto phi = presburger::Predicate::unary_threshold(k);
    const compile::LoweredMachine lowered = compile::lower_program(c.program);
    const std::uint64_t states =
        compile::conversion_state_count(lowered.machine);

    std::string k_text = k.to_decimal();
    if (k_text.size() > 24)
      k_text = k_text.substr(0, 10) + "..." + k_text.substr(k_text.size() - 4) +
               " (" + std::to_string(k_text.size()) + " digits)";

    table.add_row({std::to_string(n), k_text,
                   analysis::fmt_u64(phi->size()),
                   analysis::fmt_u64(c.program.size().total()),
                   analysis::fmt_u64(lowered.machine.size()),
                   analysis::fmt_u64(states),
                   analysis::fmt_double(
                       static_cast<double>(states) /
                           std::log2(static_cast<double>(phi->size())),
                       1)});
  }
  table.print(std::cout);

  std::printf("\nTheorem 1: O(n) states decide x >= k with k >= 2^(2^(n-1)).");
  std::printf("\nSince |phi| ~ log2 k ~ 2^(n-1), the protocol has"
              " O(log |phi|) states: the states/log2|phi| column"
              " converges to a constant.\n");
  return 0;
}
